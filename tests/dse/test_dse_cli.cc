/**
 * @file
 * End-to-end suite for the scnn_dse CLI (SCNN_DSE_BIN, injected by
 * CMake): real process spawns over a real sweep of real simulations.
 *
 *  - a grid sweep emits a well-formed scnn.dse_report.v1 whose funnel
 *    accounts for every candidate and whose frontier is non-empty;
 *  - --stop-after exits 3 leaving a resumable checkpoint, and the
 *    resumed run converges to the straight-through run's checkpoint
 *    bytes and frontier;
 *  - the same sweep against a live 2-shard scnn_serve fleet
 *    (--connect) produces a bit-identical frontier, and the shards'
 *    metrics files carry requests_total plus their shard identity;
 *  - usage errors exit 2, runtime failures exit 1.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/json.hh"

namespace scnn {
namespace {

using Clock = std::chrono::steady_clock;

std::string
uniquePath(const char *stem)
{
    static std::atomic<int> counter{0};
    return testing::TempDir() + stem + "_" +
           std::to_string(getpid()) + "_" +
           std::to_string(counter.fetch_add(1));
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

pid_t
spawn(const std::vector<std::string> &args,
      const std::string &stderrPath)
{
    std::vector<char *> argv;
    for (const auto &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = fork();
    if (pid != 0)
        return pid;
    const int devnull = open("/dev/null", O_RDWR);
    dup2(devnull, STDIN_FILENO);
    dup2(devnull, STDOUT_FILENO);
    const int errFd = open(stderrPath.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (errFd >= 0)
        dup2(errFd, STDERR_FILENO);
    execv(argv[0], argv.data());
    _exit(127);
}

int
waitForExit(pid_t pid, double timeoutSec = 120.0)
{
    const auto deadline =
        Clock::now() + std::chrono::duration<double>(timeoutSec);
    int status = 0;
    for (;;) {
        const pid_t r = waitpid(pid, &status, WNOHANG);
        if (r == pid)
            break;
        if (Clock::now() > deadline) {
            kill(pid, SIGKILL);
            waitpid(pid, &status, 0);
            ADD_FAILURE() << "process did not exit in " << timeoutSec
                          << "s; killed";
            return -1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

/** Run scnn_dse to completion; returns the exit status. */
int
runDse(const std::vector<std::string> &extraArgs,
       std::string *errOut = nullptr)
{
    const std::string errPath = uniquePath("dse_err");
    std::vector<std::string> args = {SCNN_DSE_BIN};
    args.insert(args.end(), extraArgs.begin(), extraArgs.end());
    const int status = waitForExit(spawn(args, errPath));
    if (errOut)
        *errOut = slurp(errPath);
    return status;
}

/** A 12-point spec over the PE array; sweeps finish in seconds. */
std::string
writeSpec()
{
    const std::string path = uniquePath("dse_spec");
    std::ofstream out(path);
    out << R"({"schema": "scnn.dse_spec.v1", "name": "cli-test",
               "axes": [
                 {"field": "pe_rows", "values": [2, 4, 8]},
                 {"field": "mul_i", "values": [1, 2]},
                 {"field": "accum_banks", "values": [16, 32]}]})";
    return path;
}

JsonValue
loadReport(const std::string &path)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parseJson(slurp(path), v, error)) << error;
    return v;
}

uint64_t
funnelField(const JsonValue &report, const char *field)
{
    const JsonValue *funnel = report.find("funnel");
    EXPECT_NE(funnel, nullptr);
    const JsonValue *v = funnel->find(field);
    EXPECT_NE(v, nullptr) << field;
    return v ? v->uint64 : 0;
}

TEST(DseCli, GridSweepEmitsAWellFormedReport)
{
    const std::string spec = writeSpec();
    const std::string reportPath = uniquePath("dse_report");
    std::string err;
    ASSERT_EQ(runDse({"--spec=" + spec, "--network=tiny",
                      "--strategy=grid", "--quiet",
                      "--json=" + reportPath},
                     &err),
              0)
        << err;

    const JsonValue report = loadReport(reportPath);
    ASSERT_TRUE(report.isObject());
    EXPECT_EQ(report.find("schema")->string, "scnn.dse_report.v1");
    EXPECT_EQ(report.find("spec")->string, "cli-test");
    EXPECT_EQ(report.find("network")->string, "tiny");
    EXPECT_EQ(report.find("strategy")->string, "grid");
    EXPECT_NE(report.find("transport")->string.find("in-process"),
              std::string::npos);
    EXPECT_FALSE(report.find("stopped_early")->boolean);

    EXPECT_EQ(funnelField(report, "candidates"), 12u);
    EXPECT_EQ(funnelField(report, "invalid") +
                  funnelField(report, "pruned") +
                  funnelField(report, "simulated") +
                  funnelField(report, "errors"),
              12u);
    EXPECT_EQ(funnelField(report, "errors"), 0u);
    EXPECT_GT(funnelField(report, "simulated"), 0u);

    const JsonValue *frontier = report.find("frontier");
    ASSERT_TRUE(frontier && frontier->isArray());
    EXPECT_FALSE(frontier->array.empty());
    EXPECT_EQ(report.find("frontier_size")->uint64,
              frontier->array.size());
    for (const JsonValue &p : frontier->array) {
        EXPECT_TRUE(p.find("point")->isString());
        EXPECT_TRUE(p.find("cycles")->isUnsigned);
        EXPECT_GT(p.find("cycles")->uint64, 0u);
        EXPECT_GT(p.find("energy_pj")->number, 0.0);
        EXPECT_GT(p.find("area_mm2")->number, 0.0);
    }
    const JsonValue *fronts = report.find("fronts");
    ASSERT_TRUE(fronts && fronts->isArray());
    ASSERT_FALSE(fronts->array.empty());
    // Rank 1 is the frontier.
    EXPECT_EQ(fronts->array.front().array.size(),
              frontier->array.size());
}

TEST(DseCli, StopAfterLeavesAResumableCheckpoint)
{
    const std::string spec = writeSpec();
    const std::string refCkpt = uniquePath("dse_ref");
    const std::string refReport = uniquePath("dse_refrep");
    const std::string resCkpt = uniquePath("dse_res");
    const std::string resReport = uniquePath("dse_resrep");
    std::string err;

    ASSERT_EQ(runDse({"--spec=" + spec, "--network=tiny", "--quiet",
                      "--checkpoint=" + refCkpt,
                      "--json=" + refReport},
                     &err),
              0)
        << err;
    // Kill after 4 records: exit 3 says "resumable".
    ASSERT_EQ(runDse({"--spec=" + spec, "--network=tiny", "--quiet",
                      "--checkpoint=" + resCkpt, "--stop-after=4"},
                     &err),
              3)
        << err;
    ASSERT_EQ(runDse({"--spec=" + spec, "--network=tiny", "--quiet",
                      "--checkpoint=" + resCkpt,
                      "--json=" + resReport},
                     &err),
              0)
        << err;

    EXPECT_EQ(slurp(refCkpt), slurp(resCkpt));
    const JsonValue ref = loadReport(refReport);
    const JsonValue res = loadReport(resReport);
    EXPECT_GT(funnelField(res, "resumed"), 0u);
    // Identical frontier, independently serialized.
    EXPECT_EQ(ref.find("frontier_size")->uint64,
              res.find("frontier_size")->uint64);
    const auto &fa = ref.find("frontier")->array;
    const auto &fb = res.find("frontier")->array;
    ASSERT_EQ(fa.size(), fb.size());
    for (size_t i = 0; i < fa.size(); ++i) {
        EXPECT_EQ(fa[i].find("point")->string,
                  fb[i].find("point")->string);
        EXPECT_EQ(fa[i].find("cycles")->uint64,
                  fb[i].find("cycles")->uint64);
        EXPECT_EQ(fa[i].find("energy_pj")->number,
                  fb[i].find("energy_pj")->number);
    }
}

TEST(DseCli, TwoShardFleetMatchesInProcessBitForBit)
{
    const std::string spec = writeSpec();

    // Start a 2-shard fleet on ephemeral ports.
    struct Shard
    {
        pid_t pid;
        int port;
        std::string metricsPath;
    };
    std::vector<Shard> shards;
    for (int i = 0; i < 2; ++i) {
        const std::string portFile = uniquePath("dse_port");
        const std::string errPath = uniquePath("dse_serve_err");
        Shard s;
        s.metricsPath = uniquePath("dse_metrics");
        s.pid = spawn({SCNN_SERVE_BIN, "--listen=127.0.0.1:0",
                       "--port-file=" + portFile,
                       "--shard=" + std::to_string(i) + "/2",
                       "--metrics=" + s.metricsPath},
                      errPath);
        const auto deadline = Clock::now() + std::chrono::seconds(30);
        s.port = 0;
        while (Clock::now() < deadline) {
            const std::string text = slurp(portFile);
            if (!text.empty()) {
                s.port = std::atoi(text.c_str());
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        ASSERT_GT(s.port, 0) << slurp(errPath);
        shards.push_back(s);
    }

    const std::string localReport = uniquePath("dse_local");
    const std::string remoteReport = uniquePath("dse_remote");
    std::string err;
    ASSERT_EQ(runDse({"--spec=" + spec, "--network=tiny", "--quiet",
                      "--json=" + localReport},
                     &err),
              0)
        << err;
    ASSERT_EQ(
        runDse({"--spec=" + spec, "--network=tiny", "--quiet",
                "--connect=127.0.0.1:" +
                    std::to_string(shards[0].port) + ",127.0.0.1:" +
                    std::to_string(shards[1].port),
                "--json=" + remoteReport},
               &err),
        0)
        << err;

    for (Shard &s : shards) {
        kill(s.pid, SIGTERM);
        EXPECT_EQ(waitForExit(s.pid), 0);
    }

    const JsonValue local = loadReport(localReport);
    const JsonValue remote = loadReport(remoteReport);
    EXPECT_NE(remote.find("transport")->string.find("remote"),
              std::string::npos);
    const auto &fl = local.find("frontier")->array;
    const auto &fr = remote.find("frontier")->array;
    ASSERT_EQ(fl.size(), fr.size());
    ASSERT_FALSE(fl.empty());
    for (size_t i = 0; i < fl.size(); ++i) {
        EXPECT_EQ(fl[i].find("point")->string,
                  fr[i].find("point")->string);
        EXPECT_EQ(fl[i].find("cycles")->uint64,
                  fr[i].find("cycles")->uint64);
        // Bit-exact: %.17g round trip, no tolerance.
        EXPECT_EQ(fl[i].find("energy_pj")->number,
                  fr[i].find("energy_pj")->number);
    }

    // Both shards carried traffic and report their identity.
    uint64_t totalOk = 0;
    for (const Shard &s : shards) {
        JsonValue m;
        std::string perror;
        ASSERT_TRUE(parseJson(slurp(s.metricsPath), m, perror))
            << perror;
        const JsonValue *totals = m.find("requests_total");
        ASSERT_NE(totals, nullptr);
        totalOk += totals->find("ok")->uint64;
        const JsonValue *shard = m.find("shard");
        ASSERT_NE(shard, nullptr);
        EXPECT_EQ(shard->find("count")->uint64, 2u);
    }
    EXPECT_EQ(totalOk, funnelField(remote, "simulated"));
}

TEST(DseCli, UsageAndRuntimeErrorsUseDistinctExitCodes)
{
    std::string err;
    EXPECT_EQ(runDse({}, &err), 2); // --spec required
    EXPECT_NE(err.find("usage"), std::string::npos);
    EXPECT_EQ(runDse({"--spec=x", "--frobnicate"}, &err), 2);
    // Unreadable spec / unknown network are runtime failures.
    EXPECT_EQ(runDse({"--spec=/nonexistent.json"}, &err), 1);
    const std::string spec = writeSpec();
    EXPECT_EQ(runDse({"--spec=" + spec, "--network=resnet50"}, &err),
              1);
    EXPECT_NE(err.find("network"), std::string::npos);
    // Evolve cannot be sharded.
    EXPECT_EQ(runDse({"--spec=" + spec, "--strategy=evolve",
                      "--shard=0/2"},
                     &err),
              1);
    // A dead endpoint is a connect failure.
    EXPECT_EQ(runDse({"--spec=" + spec, "--network=tiny",
                      "--connect=127.0.0.1:1"},
                     &err),
              1);
}

} // namespace
} // namespace scnn
