/**
 * @file
 * Unit suite for the sweep-spec layer (src/dse/spec): JSON parsing of
 * scnn.dse_spec.v1 with its strict unknown-key contract, axis
 * expansion (values / range / log2), ordinal decoding, point ids, and
 * materialization + validation against AcceleratorConfig.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "dse/spec.hh"

namespace scnn {
namespace {

/** Shorthand: parse, expect failure, return the error message. */
std::string
expectReject(const std::string &text)
{
    SweepSpec spec;
    std::string error;
    bool ok = true;
    EXPECT_NO_THROW(ok = parseSweepSpec(text, spec, error)) << text;
    EXPECT_FALSE(ok) << "accepted: " << text;
    EXPECT_FALSE(error.empty()) << "no error text for: " << text;
    return error;
}

const char *kValid = R"({
  "schema": "scnn.dse_spec.v1",
  "name": "t",
  "base": "scnn",
  "axes": [
    {"field": "pe_rows", "values": [2, 4, 8]},
    {"field": "accum_banks", "log2": {"lo": 8, "hi": 32}},
    {"field": "kc_cap", "range": {"lo": 0, "hi": 4, "step": 2}}
  ]
})";

TEST(SweepSpec, ValidSpecExpandsEveryAxisKind)
{
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(parseSweepSpec(kValid, spec, error)) << error;
    EXPECT_EQ(spec.name, "t");
    ASSERT_EQ(spec.axes.size(), 3u);
    EXPECT_EQ(spec.axes[0].values,
              (std::vector<int64_t>{2, 4, 8}));
    EXPECT_EQ(spec.axes[1].values,
              (std::vector<int64_t>{8, 16, 32}));
    EXPECT_EQ(spec.axes[2].values,
              (std::vector<int64_t>{0, 2, 4}));
    EXPECT_EQ(spec.totalPoints(), 27u);
}

TEST(SweepSpec, OrdinalDecodingIsRowMajorLastAxisFastest)
{
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(parseSweepSpec(kValid, spec, error)) << error;
    EXPECT_EQ(spec.indicesFor(0), (std::vector<int>{0, 0, 0}));
    EXPECT_EQ(spec.indicesFor(1), (std::vector<int>{0, 0, 1}));
    EXPECT_EQ(spec.indicesFor(3), (std::vector<int>{0, 1, 0}));
    EXPECT_EQ(spec.indicesFor(26), (std::vector<int>{2, 2, 2}));

    // Every ordinal decodes to a distinct id.
    std::set<std::string> ids;
    for (uint64_t o = 0; o < spec.totalPoints(); ++o)
        ids.insert(spec.pointId(spec.indicesFor(o)));
    EXPECT_EQ(ids.size(), spec.totalPoints());
}

TEST(SweepSpec, PointIdListsFieldsInAxisOrder)
{
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(parseSweepSpec(kValid, spec, error)) << error;
    EXPECT_EQ(spec.pointId({1, 2, 0}),
              "pe_rows=4,accum_banks=32,kc_cap=0");
}

TEST(SweepSpec, MaterializeAppliesValuesAndValidates)
{
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(parseSweepSpec(kValid, spec, error)) << error;

    AcceleratorConfig cfg;
    EXPECT_TRUE(spec.materialize({2, 0, 1}, cfg).empty());
    EXPECT_EQ(cfg.peRows, 8);
    EXPECT_EQ(cfg.pe.accumBanks, 8);
    EXPECT_EQ(cfg.pe.kcCap, 2);
    // The point id doubles as the config name for error messages.
    EXPECT_EQ(cfg.name, spec.pointId({2, 0, 1}));
    // Unswept fields keep their base values.
    EXPECT_EQ(cfg.peCols, scnnConfig().peCols);
}

TEST(SweepSpec, InvalidCornersComeBackAsValidateErrors)
{
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(parseSweepSpec(R"({
      "schema": "scnn.dse_spec.v1",
      "name": "t",
      "axes": [{"field": "ppu_lanes", "values": [0, 1]}]
    })", spec, error)) << error;

    AcceleratorConfig cfg;
    const auto problems = spec.materialize({0}, cfg);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems.front().find("lanes"), std::string::npos);
    EXPECT_TRUE(spec.materialize({1}, cfg).empty());
}

TEST(SweepSpec, MalformedDocumentsAreRejectedStructurally)
{
    expectReject("");
    expectReject("{");
    expectReject("[]");
    expectReject("{}"); // missing schema
    expectReject(R"({"schema": "scnn.dse_spec.v2", "name": "t",
                     "axes": [{"field": "pe_rows", "values": [2]}]})");
    // Unknown keys at every level.
    EXPECT_NE(expectReject(R"({"schema": "scnn.dse_spec.v1",
                   "name": "t", "frob": 1,
                   "axes": [{"field": "pe_rows", "values": [2]}]})")
                  .find("unknown"),
              std::string::npos);
    expectReject(R"({"schema": "scnn.dse_spec.v1", "name": "t",
        "axes": [{"field": "pe_rows", "values": [2], "nope": 1}]})");
    // Unknown field name.
    EXPECT_NE(expectReject(R"({"schema": "scnn.dse_spec.v1",
                   "name": "t",
                   "axes": [{"field": "warp_cores", "values": [2]}]})")
                  .find("warp_cores"),
              std::string::npos);
    // Unknown base.
    expectReject(R"({"schema": "scnn.dse_spec.v1", "name": "t",
                     "base": "tpu",
                     "axes": [{"field": "pe_rows", "values": [2]}]})");
    // No axes / empty axes.
    expectReject(R"({"schema": "scnn.dse_spec.v1", "name": "t"})");
    expectReject(R"({"schema": "scnn.dse_spec.v1", "name": "t",
                     "axes": []})");
    // Empty values list.
    expectReject(R"({"schema": "scnn.dse_spec.v1", "name": "t",
                     "axes": [{"field": "pe_rows", "values": []}]})");
    // Duplicate axis field.
    EXPECT_NE(expectReject(R"({"schema": "scnn.dse_spec.v1",
                   "name": "t",
                   "axes": [{"field": "pe_rows", "values": [2]},
                            {"field": "pe_rows", "values": [4]}]})")
                  .find("duplicate"),
              std::string::npos);
    // An axis needs exactly one kind.
    expectReject(R"({"schema": "scnn.dse_spec.v1", "name": "t",
        "axes": [{"field": "pe_rows"}]})");
    expectReject(R"({"schema": "scnn.dse_spec.v1", "name": "t",
        "axes": [{"field": "pe_rows", "values": [2],
                  "range": {"lo": 1, "hi": 2}}]})");
    // Broken ranges.
    expectReject(R"({"schema": "scnn.dse_spec.v1", "name": "t",
        "axes": [{"field": "pe_rows",
                  "range": {"lo": 4, "hi": 2}}]})");
    expectReject(R"({"schema": "scnn.dse_spec.v1", "name": "t",
        "axes": [{"field": "pe_rows",
                  "range": {"lo": 1, "hi": 8, "step": 0}}]})");
    expectReject(R"({"schema": "scnn.dse_spec.v1", "name": "t",
        "axes": [{"field": "pe_rows", "log2": {"lo": 0, "hi": 8}}]})");
}

TEST(SweepSpec, OversizedProductsAreRejected)
{
    // 9 axes x 32 values each = 2^45 points > the 2^40 cap.
    std::string doc = R"({"schema": "scnn.dse_spec.v1", "name": "big",
                          "axes": [)";
    const auto &fields = sweepableFields();
    ASSERT_GE(fields.size(), 9u);
    for (int i = 0; i < 9; ++i) {
        if (i)
            doc += ",";
        doc += R"({"field": ")" + fields[i] +
               R"(", "range": {"lo": 1, "hi": 32}})";
    }
    doc += "]}";
    EXPECT_NE(expectReject(doc).find("points"), std::string::npos);
}

TEST(SweepSpec, EverySweepableFieldRoundTrips)
{
    // Each advertised field parses as an axis and materializes.
    for (const std::string &field : sweepableFields()) {
        SweepSpec spec;
        std::string error;
        const std::string doc =
            R"({"schema": "scnn.dse_spec.v1", "name": "t",
                "axes": [{"field": ")" + field +
            R"(", "values": [1]}]})";
        ASSERT_TRUE(parseSweepSpec(doc, spec, error))
            << field << ": " << error;
        AcceleratorConfig cfg;
        spec.materialize({0}, cfg); // must not crash; may be invalid
        int64_t readBack = -1;
        ASSERT_TRUE(getConfigField(cfg, field, readBack)) << field;
        EXPECT_EQ(readBack, 1) << field;
    }
}

TEST(SweepSpec, LoadFromMissingFileFails)
{
    SweepSpec spec;
    std::string error;
    EXPECT_FALSE(loadSweepSpec("/nonexistent/spec.json", spec, error));
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace scnn
