/**
 * @file
 * Unit suite for the append-only sweep checkpoint
 * (scnn.dse_checkpoint.v1): serialize/parse round trips with the
 * fixed key order, the torn-tail tolerance contract (exactly one
 * trailing partial/corrupt line is dropped and reported, earlier
 * corruption is a hard error), writer append semantics, and the
 * missing-file-is-fresh-sweep case.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "dse/checkpoint.hh"

namespace scnn {
namespace {

std::string
uniquePath(const char *stem)
{
    static std::atomic<int> counter{0};
    return testing::TempDir() + stem + "_" +
           std::to_string(getpid()) + "_" +
           std::to_string(counter.fetch_add(1));
}

CheckpointRecord
simulatedRecord(const std::string &id)
{
    CheckpointRecord rec;
    rec.pointId = id;
    rec.indices = {1, 0, 2};
    rec.stage = DseStage::Simulated;
    rec.analyticCycles = 1234;
    rec.analyticEnergyPj = 5.5;
    rec.cycles = 1500;
    rec.energyPj = 6.25;
    rec.areaMm2 = 7.875;
    return rec;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    out << content;
}

TEST(Checkpoint, EveryStageRoundTrips)
{
    CheckpointRecord inv;
    inv.pointId = "pe_rows=0";
    inv.indices = {0};
    inv.stage = DseStage::Invalid;
    inv.error = "config pe_rows=0: empty PE array (0x8)";

    CheckpointRecord pruned;
    pruned.pointId = "pe_rows=2";
    pruned.indices = {1};
    pruned.stage = DseStage::Pruned;
    pruned.analyticCycles = 999;
    pruned.analyticEnergyPj = 0.5;

    CheckpointRecord err = simulatedRecord("pe_rows=4");
    err.stage = DseStage::Error;
    err.error = "backend exploded";
    // Objectives are serialized for simulated records only, so a
    // round-trippable error record must not carry them.
    err.cycles = 0;
    err.energyPj = 0.0;
    err.areaMm2 = 0.0;

    for (const CheckpointRecord &rec :
         {inv, pruned, simulatedRecord("pe_rows=8"), err}) {
        const std::string line = serializeCheckpointRecord(rec);
        EXPECT_EQ(line.find('\n'), std::string::npos);
        CheckpointRecord back;
        std::string error;
        ASSERT_TRUE(parseCheckpointRecord(line, back, error))
            << line << ": " << error;
        EXPECT_EQ(back.pointId, rec.pointId);
        EXPECT_EQ(back.indices, rec.indices);
        EXPECT_EQ(back.stage, rec.stage);
        EXPECT_EQ(back.analyticCycles, rec.analyticCycles);
        EXPECT_EQ(back.analyticEnergyPj, rec.analyticEnergyPj);
        EXPECT_EQ(back.cycles, rec.cycles);
        EXPECT_EQ(back.energyPj, rec.energyPj);
        EXPECT_EQ(back.areaMm2, rec.areaMm2);
        EXPECT_EQ(back.error, rec.error);
        // Byte-stable: re-serializing reproduces the line exactly.
        EXPECT_EQ(serializeCheckpointRecord(back), line);
    }
}

TEST(Checkpoint, ObjectiveDoublesSurviveTheRoundTripBitExactly)
{
    CheckpointRecord rec = simulatedRecord("p");
    rec.energyPj = 1.0 / 3.0;
    rec.areaMm2 = 0.1 + 0.2; // not representable; tests %.17g
    CheckpointRecord back;
    std::string error;
    ASSERT_TRUE(parseCheckpointRecord(serializeCheckpointRecord(rec),
                                      back, error))
        << error;
    EXPECT_EQ(back.energyPj, rec.energyPj);
    EXPECT_EQ(back.areaMm2, rec.areaMm2);
}

TEST(Checkpoint, ParseRejectsGarbageStructurally)
{
    CheckpointRecord rec;
    std::string error;
    for (const char *line :
         {"", "{", "[]", "{}",
          R"({"schema":"scnn.dse_checkpoint.v2","point":"p","indices":[0],"stage":"pruned"})",
          R"({"schema":"scnn.dse_checkpoint.v1","indices":[0],"stage":"pruned"})",
          R"({"schema":"scnn.dse_checkpoint.v1","point":"p","indices":[0],"stage":"later"})",
          R"({"schema":"scnn.dse_checkpoint.v1","point":"p","indices":[0],"stage":"simulated"})",
          R"({"schema":"scnn.dse_checkpoint.v1","point":"p","indices":[0],"stage":"pruned","analytic_cycles":1,"analytic_energy_pj":1.0,"frob":1})"}) {
        EXPECT_FALSE(parseCheckpointRecord(line, rec, error)) << line;
        EXPECT_FALSE(error.empty());
    }
}

TEST(Checkpoint, MissingFileIsAFreshSweep)
{
    std::vector<CheckpointRecord> records;
    bool droppedTail = true;
    std::string error;
    ASSERT_TRUE(loadCheckpoint(uniquePath("chk_missing"), records,
                               droppedTail, error))
        << error;
    EXPECT_TRUE(records.empty());
    EXPECT_FALSE(droppedTail);
}

TEST(Checkpoint, WriterAppendsAndLoaderReplays)
{
    const std::string path = uniquePath("chk_rw");
    {
        CheckpointWriter writer;
        std::string error;
        ASSERT_TRUE(writer.open(path, error)) << error;
        for (int i = 0; i < 5; ++i)
            ASSERT_TRUE(
                writer.add(simulatedRecord("p" + std::to_string(i))));
        writer.close();
    }
    // A second writer appends (resume semantics), never truncates.
    {
        CheckpointWriter writer;
        std::string error;
        ASSERT_TRUE(writer.open(path, error)) << error;
        ASSERT_TRUE(writer.add(simulatedRecord("p5")));
    }
    std::vector<CheckpointRecord> records;
    bool droppedTail = true;
    std::string error;
    ASSERT_TRUE(loadCheckpoint(path, records, droppedTail, error))
        << error;
    EXPECT_FALSE(droppedTail);
    ASSERT_EQ(records.size(), 6u);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(records[i].pointId, "p" + std::to_string(i));
    std::remove(path.c_str());
}

TEST(Checkpoint, TornFinalLineIsDroppedAndReported)
{
    const std::string good =
        serializeCheckpointRecord(simulatedRecord("good"));

    // Torn mid-record: the crash cut the final write short.
    const std::string pathTorn = uniquePath("chk_torn");
    writeFile(pathTorn, good + "\n" +
                            good.substr(0, good.size() / 2));
    std::vector<CheckpointRecord> records;
    bool droppedTail = false;
    std::string error;
    ASSERT_TRUE(
        loadCheckpoint(pathTorn, records, droppedTail, error))
        << error;
    EXPECT_TRUE(droppedTail);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records.front().pointId, "good");

    // A complete final record with no trailing newline is also
    // treated as torn (the newline is the commit marker).
    const std::string pathNoNl = uniquePath("chk_nonl");
    writeFile(pathNoNl, good + "\n" + good);
    records.clear();
    droppedTail = false;
    ASSERT_TRUE(
        loadCheckpoint(pathNoNl, records, droppedTail, error))
        << error;
    EXPECT_TRUE(droppedTail);
    EXPECT_EQ(records.size(), 1u);

    std::remove(pathTorn.c_str());
    std::remove(pathNoNl.c_str());
}

TEST(Checkpoint, EarlierCorruptionIsAHardError)
{
    const std::string good =
        serializeCheckpointRecord(simulatedRecord("good"));
    const std::string path = uniquePath("chk_corrupt");
    writeFile(path, "{\"half\":\n" + good + "\n");
    std::vector<CheckpointRecord> records;
    bool droppedTail = false;
    std::string error;
    EXPECT_FALSE(
        loadCheckpoint(path, records, droppedTail, error));
    EXPECT_FALSE(error.empty());
    std::remove(path.c_str());
}

TEST(Checkpoint, ResumeAfterTornTailConvergesToTheSameBytes)
{
    // The workflow the sweep driver relies on: a reference file of
    // records 0..4; a crashed twin holding 0..2 plus a torn copy of
    // record 3.  Resuming (append the records the loader did not
    // return) must converge to the reference bytes, with the torn
    // fragment neutralized first.
    std::vector<CheckpointRecord> all;
    for (int i = 0; i < 5; ++i)
        all.push_back(simulatedRecord("p" + std::to_string(i)));

    const std::string refPath = uniquePath("chk_ref");
    {
        CheckpointWriter w;
        std::string error;
        ASSERT_TRUE(w.open(refPath, error)) << error;
        for (const auto &rec : all)
            ASSERT_TRUE(w.add(rec));
    }

    const std::string crashPath = uniquePath("chk_crash");
    {
        std::string bytes;
        for (int i = 0; i < 3; ++i)
            bytes += serializeCheckpointRecord(all[i]) + "\n";
        const std::string torn = serializeCheckpointRecord(all[3]);
        bytes += torn.substr(0, torn.size() - 7);
        writeFile(crashPath, bytes);
    }

    std::vector<CheckpointRecord> replay;
    bool droppedTail = false;
    std::string error;
    ASSERT_TRUE(
        loadCheckpoint(crashPath, replay, droppedTail, error))
        << error;
    ASSERT_TRUE(droppedTail);
    ASSERT_EQ(replay.size(), 3u);

    // Truncate the torn fragment the way the sweep writer's open()
    // path is expected to be used after a detected tail drop: rewrite
    // the surviving records, then append the remainder.
    {
        std::string bytes;
        for (const auto &rec : replay)
            bytes += serializeCheckpointRecord(rec) + "\n";
        writeFile(crashPath, bytes);
        CheckpointWriter w;
        ASSERT_TRUE(w.open(crashPath, error)) << error;
        for (size_t i = replay.size(); i < all.size(); ++i)
            ASSERT_TRUE(w.add(all[i]));
    }

    std::ifstream a(refPath, std::ios::binary);
    std::ifstream b(crashPath, std::ios::binary);
    std::string refBytes((std::istreambuf_iterator<char>(a)),
                         std::istreambuf_iterator<char>());
    std::string crashBytes((std::istreambuf_iterator<char>(b)),
                           std::istreambuf_iterator<char>());
    EXPECT_EQ(refBytes, crashBytes);
    std::remove(refPath.c_str());
    std::remove(crashPath.c_str());
}

} // namespace
} // namespace scnn
