/** @file Unit tests for the shared parallel-execution subsystem. */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.hh"

namespace scnn {
namespace {

/** Restore the default-thread override after each test. */
class ParallelTest : public ::testing::Test
{
  protected:
    void TearDown() override { setDefaultThreads(0); }
};

TEST_F(ParallelTest, EveryIndexRunsExactlyOnce)
{
    for (int threads : {1, 2, 4, 8}) {
        const size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        parallelFor(
            n, [&](size_t i) { hits[i].fetch_add(1); }, threads);
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "i=" << i
                                         << " threads=" << threads;
    }
}

TEST_F(ParallelTest, ZeroAndSingleIterationDegenerate)
{
    int calls = 0;
    parallelFor(0, [&](size_t) { ++calls; }, 8);
    EXPECT_EQ(calls, 0);
    parallelFor(1, [&](size_t) { ++calls; }, 8);
    EXPECT_EQ(calls, 1);
}

TEST_F(ParallelTest, ParallelMapPreservesOrder)
{
    std::vector<int> items(257);
    std::iota(items.begin(), items.end(), 0);
    for (int threads : {1, 3, 8}) {
        const std::vector<int> squares = parallelMap(
            items, [](int v) { return v * v; }, threads);
        ASSERT_EQ(squares.size(), items.size());
        for (size_t i = 0; i < items.size(); ++i)
            EXPECT_EQ(squares[i], items[i] * items[i]);
    }
}

TEST_F(ParallelTest, ExceptionPropagatesToCaller)
{
    for (int threads : {1, 4}) {
        EXPECT_THROW(
            parallelFor(
                100,
                [](size_t i) {
                    if (i == 37)
                        throw std::runtime_error("boom");
                },
                threads),
            std::runtime_error)
            << "threads=" << threads;
    }
}

TEST_F(ParallelTest, ExceptionSkipsRemainingWork)
{
    // After a throw, unclaimed indices are skipped: the body must not
    // run all 1e6 iterations.
    std::atomic<size_t> ran{0};
    try {
        parallelFor(
            1000000,
            [&](size_t) {
                if (ran.fetch_add(1) == 10)
                    throw std::runtime_error("stop");
            },
            4);
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &) {
    }
    EXPECT_LT(ran.load(), 1000000u);
}

TEST_F(ParallelTest, NestedParallelismRunsInline)
{
    std::atomic<int> outer{0};
    std::atomic<int> inner{0};
    std::atomic<int> nestedSawRegion{0};
    parallelFor(
        4,
        [&](size_t) {
            EXPECT_TRUE(inParallelRegion());
            outer.fetch_add(1);
            parallelFor(
                8,
                [&](size_t) {
                    inner.fetch_add(1);
                    if (inParallelRegion())
                        nestedSawRegion.fetch_add(1);
                },
                8);
        },
        4);
    EXPECT_EQ(outer.load(), 4);
    EXPECT_EQ(inner.load(), 32);
    // Inner bodies all ran inside the outer region (inline).
    EXPECT_EQ(nestedSawRegion.load(), 32);
    EXPECT_FALSE(inParallelRegion());
}

TEST_F(ParallelTest, ResolveThreadsPriorities)
{
    EXPECT_EQ(resolveThreads(5), 5);
    EXPECT_GE(resolveThreads(0), 1);
    setDefaultThreads(3);
    EXPECT_EQ(resolveThreads(), 3);
    EXPECT_EQ(resolveThreads(7), 7); // explicit beats override
    setDefaultThreads(0);
    EXPECT_GE(resolveThreads(), 1);
}

TEST_F(ParallelTest, ConsumeThreadsFlagParsesAndCompacts)
{
    char a0[] = "prog";
    char a1[] = "--threads=6";
    char a2[] = "--other=x";
    char *argv[] = {a0, a1, a2};
    const int argc = consumeThreadsFlag(3, argv);
    EXPECT_EQ(argc, 2);
    EXPECT_STREQ(argv[0], "prog");
    EXPECT_STREQ(argv[1], "--other=x");
    EXPECT_EQ(resolveThreads(), 6);

    char b0[] = "prog";
    char b1[] = "--threads";
    char b2[] = "4";
    char *argv2[] = {b0, b1, b2};
    EXPECT_EQ(consumeThreadsFlag(3, argv2), 1);
    EXPECT_EQ(resolveThreads(), 4);
}

TEST_F(ParallelTest, SerialAndParallelSumsAgreeUnderSlotDiscipline)
{
    // The determinism contract: per-index slots + in-order reduction
    // must give identical bits for any thread count.
    const size_t n = 4096;
    auto run = [&](int threads) {
        std::vector<double> slots(n);
        parallelFor(
            n,
            [&](size_t i) {
                slots[i] = 1.0 / static_cast<double>(i + 1);
            },
            threads);
        double sum = 0.0;
        for (double v : slots)
            sum += v;
        return sum;
    };
    const double s1 = run(1);
    for (int threads : {2, 5, 8})
        EXPECT_EQ(s1, run(threads));
}

} // anonymous namespace
} // namespace scnn
