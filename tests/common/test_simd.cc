/**
 * @file
 * Unit tests of the portable SIMD lane layer (common/simd.hh): lane
 * arithmetic, masks, compress-store, the gather/scatter/conflict
 * specials of the kernel tier, the aligned allocator, and the
 * SCNN_SIMD runtime mode plumbing.  Every op is checked against a
 * scalar reference on the same data, so the suite passes on every
 * build tier (the scalar tier exercises the width-1 implementations).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/simd.hh"

namespace scnn {
namespace {

using simd::LaneMask;
using simd::Vec;

TEST(Simd, TierIsConsistent)
{
    EXPECT_EQ(Vec<float>::kLanes, simd::kFloatLanes);
    EXPECT_EQ(Vec<double>::kLanes, simd::kDoubleLanes);
    EXPECT_EQ(Vec<int32_t>::kLanes, simd::kInt32Lanes);
    EXPECT_GE(simd::kFloatLanes, 1);
    EXPECT_STREQ(simd::tierName(), simd::kTierName);
    if (simd::kKernelVectorized) {
        EXPECT_TRUE(simd::kHasGather);
        EXPECT_TRUE(simd::kHasScatter);
        EXPECT_TRUE(simd::kHasConflict);
    }
}

TEST(Simd, ModeOverrideRoundTrip)
{
    const simd::Mode ambient = simd::mode();
    simd::setMode(simd::Mode::Scalar);
    EXPECT_EQ(simd::mode(), simd::Mode::Scalar);
    simd::setMode(simd::Mode::Native);
    EXPECT_EQ(simd::mode(), simd::Mode::Native);
    simd::setMode(ambient);
    EXPECT_NE(simd::activeDescription(), nullptr);
}

TEST(Simd, MaskN)
{
    EXPECT_EQ(simd::maskN(0), 0u);
    EXPECT_EQ(simd::maskN(1), 1u);
    EXPECT_EQ(simd::maskN(4), 0xfu);
    EXPECT_EQ(simd::maskN(16), 0xffffu);
    EXPECT_EQ(simd::maskN(32), 0xffffffffu);
}

TEST(Simd, AlignedVecIsCacheLineAligned)
{
    simd::AlignedVec<float> f(100, 1.0f);
    simd::AlignedVec<double> d(100, 2.0);
    simd::AlignedVec<int16_t> h(100, 3);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(f.data()) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(d.data()) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(h.data()) % 64, 0u);
    f.resize(1000);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(f.data()) % 64, 0u);
}

TEST(Simd, FloatLaneArithmeticAndMasks)
{
    constexpr int W = Vec<float>::kLanes;
    Rng rng(7);
    simd::AlignedVec<float> a(W), b(W), out(W);
    for (int i = 0; i < W; ++i) {
        a[i] = (i % 3 == 0) ? 0.0f
                            : static_cast<float>(rng.uniform(-2.0, 2.0));
        b[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
    const Vec<float> va = Vec<float>::load(a.data());
    const Vec<float> vb = Vec<float>::loadu(b.data());

    (va + vb).storeu(out.data());
    for (int i = 0; i < W; ++i)
        EXPECT_EQ(out[i], a[i] + b[i]) << i;

    (va * vb).store(out.data());
    for (int i = 0; i < W; ++i)
        EXPECT_EQ(out[i], a[i] * b[i]) << i;

    simd::fma(va, vb, Vec<float>::broadcast(0.5f)).storeu(out.data());
    for (int i = 0; i < W; ++i)
        EXPECT_NEAR(out[i], a[i] * b[i] + 0.5f, 1e-6) << i;

    const LaneMask z = simd::zeroMask(va);
    const LaneMask lt = simd::ltZeroMask(va);
    for (int i = 0; i < W; ++i) {
        EXPECT_EQ((z >> i) & 1u, a[i] == 0.0f ? 1u : 0u) << i;
        EXPECT_EQ((lt >> i) & 1u, a[i] < 0.0f ? 1u : 0u) << i;
    }

    // select: set bits take the second operand.
    const LaneMask sel = 0b0110u & simd::maskN(W);
    simd::select(va, vb, sel).storeu(out.data());
    for (int i = 0; i < W; ++i)
        EXPECT_EQ(out[i], ((sel >> i) & 1u) ? b[i] : a[i]) << i;
}

TEST(Simd, CompressStoreMatchesScalarCompaction)
{
    constexpr int W = Vec<float>::kLanes;
    Rng rng(11);
    for (int trial = 0; trial < 50; ++trial) {
        simd::AlignedVec<float> src(W);
        for (int i = 0; i < W; ++i)
            src[i] = rng.bernoulli(0.5)
                ? static_cast<float>(rng.uniform(0.1, 1.0))
                : 0.0f;
        const Vec<float> v = Vec<float>::loadu(src.data());
        const LaneMask keep = ~simd::zeroMask(v) & simd::maskN(W);

        std::vector<float> got(W + 1, -1.0f);
        const int n = simd::compressStore(got.data(), v, keep);

        std::vector<float> want;
        for (int i = 0; i < W; ++i)
            if (src[i] != 0.0f)
                want.push_back(src[i]);
        ASSERT_EQ(static_cast<size_t>(n), want.size());
        for (size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(got[i], want[i]) << i;
        EXPECT_EQ(got[want.size()], -1.0f) << "overwrote past count";
    }
}

TEST(Simd, DoubleLaneArithmetic)
{
    constexpr int W = Vec<double>::kLanes;
    simd::AlignedVec<double> a(W), b(W), out(W);
    for (int i = 0; i < W; ++i) {
        a[i] = 1.25 * i - 3.0;
        b[i] = 0.5 * i + 1.0;
    }
    (Vec<double>::load(a.data()) + Vec<double>::loadu(b.data()))
        .storeu(out.data());
    for (int i = 0; i < W; ++i)
        EXPECT_EQ(out[i], a[i] + b[i]) << i;
    (Vec<double>::load(a.data()) * Vec<double>::broadcast(2.0))
        .store(out.data());
    for (int i = 0; i < W; ++i)
        EXPECT_EQ(out[i], a[i] * 2.0) << i;
}

TEST(Simd, Int32LaneArithmetic)
{
    constexpr int W = Vec<int32_t>::kLanes;
    simd::AlignedVec<int32_t> a(W), out(W);
    for (int i = 0; i < W; ++i)
        a[i] = 100 * i - 50;
    (Vec<int32_t>::load(a.data()) + Vec<int32_t>::broadcast(7))
        .storeu(out.data());
    for (int i = 0; i < W; ++i)
        EXPECT_EQ(out[i], a[i] + 7) << i;
    (Vec<int32_t>::load(a.data()) & Vec<int32_t>::broadcast(31))
        .store(out.data());
    for (int i = 0; i < W; ++i)
        EXPECT_EQ(out[i], a[i] & 31) << i;
}

#if defined(SCNN_SIMD_AVX512)

TEST(SimdKernelTier, ConflictAndPopcount)
{
    // ids with known duplicate structure: lane i's conflict mask
    // holds the earlier lanes with the same value.
    alignas(64) const int32_t ids[16] = {3, 5, 3, 7, 5, 3, 9, 9,
                                         1, 2, 3, 4, 5, 6, 7, 8};
    const Vec<int32_t> v = Vec<int32_t>::load(ids);
    alignas(64) int32_t cnt[16];
    (simd::popcount(simd::conflict(v)) + Vec<int32_t>::broadcast(1))
        .store(cnt);
    for (int i = 0; i < 16; ++i) {
        int expect = 1;
        for (int j = 0; j < i; ++j)
            if (ids[j] == ids[i])
                ++expect;
        EXPECT_EQ(cnt[i], expect) << i;
    }

    EXPECT_FALSE(simd::hasConflict(v, 0x3u));  // lanes {3, 5}
    EXPECT_TRUE(simd::hasConflict(v, 0x7u));   // dup 3 at lane 2
    EXPECT_TRUE(simd::hasConflict(v, 0x1u | (1u << 10)));
    EXPECT_FALSE(simd::hasConflict(v, (1u << 6) | (1u << 8)));
    // A valid lane that duplicates an *earlier* masked-off lane still
    // reports a conflict: the kernels only ever mask high (tail)
    // lanes, so this conservative semantic never misses a real dup.
    EXPECT_TRUE(simd::hasConflict(v, 1u << 7));
}

TEST(SimdKernelTier, Gather32Scatter32)
{
    simd::AlignedVec<uint32_t> table(64);
    for (int i = 0; i < 64; ++i)
        table[i] = 1000u + i;
    alignas(64) const int32_t idx[16] = {5,  0, 63, 7, 7, 12, 31, 2,
                                         40, 1, 1,  9, 8, 50, 33, 4};
    const Vec<int32_t> vidx = Vec<int32_t>::load(idx);
    alignas(64) int32_t got[16];
    simd::gather32(table.data(), vidx).store(got);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(static_cast<uint32_t>(got[i]), table[idx[i]]) << i;

    // Scatter: ascending lane order, highest duplicate lane wins.
    alignas(64) int32_t vals[16];
    for (int i = 0; i < 16; ++i)
        vals[i] = 2000 + i;
    simd::scatter32(table.data(), vidx, Vec<int32_t>::load(vals));
    EXPECT_EQ(table[7], 2004u);  // lanes 3 and 4 -> lane 4 wins
    EXPECT_EQ(table[1], 2010u);  // lanes 9 and 10 -> lane 10 wins
    EXPECT_EQ(table[5], 2000u);
    EXPECT_EQ(table[63], 2002u);
    EXPECT_EQ(table[6], 1006u) << "untouched entry";
}

TEST(SimdKernelTier, GatherScatterF64)
{
    simd::AlignedVec<double> dtab(32);
    for (int i = 0; i < 32; ++i)
        dtab[i] = 0.5 * i;
    alignas(64) const int32_t idx[16] = {1, 3, 5,  7,  9,  11, 13, 15,
                                         0, 2, 30, 31, 17, 19, 21, 23};
    const Vec<int32_t> vidx = Vec<int32_t>::load(idx);

    alignas(64) double dlo[8], dhi[8];
    simd::gatherF64(dtab.data(), vidx, 0, 0xffffu).storeu(dlo);
    simd::gatherF64(dtab.data(), vidx, 1, 0xffffu).storeu(dhi);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(dlo[i], dtab[idx[i]]) << i;
        EXPECT_EQ(dhi[i], dtab[idx[8 + i]]) << i;
    }

    // Masked gather returns 0 in masked-off lanes.
    simd::gatherF64(dtab.data(), vidx, 0, 0x5u).storeu(dlo);
    EXPECT_EQ(dlo[1], 0.0);
    EXPECT_EQ(dlo[2], dtab[idx[2]]);

    // F64 scatter through half 1.
    simd::scatterF64(dtab.data(), vidx, 1,
                     Vec<double>::broadcast(-1.0), 0xffffu);
    EXPECT_EQ(dtab[30], -1.0);
    EXPECT_EQ(dtab[1], 0.5) << "half-0 index untouched by half-1";
}

TEST(SimdKernelTier, LaneShuffles)
{
    alignas(64) const int32_t four[4] = {11, 22, 33, 44};
    alignas(64) int32_t got[16];
    Vec<int32_t>::broadcast4(four).store(got);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(got[i], four[i % 4]) << i;

    alignas(64) const int32_t table[16] = {0, 10, 20, 30, 40, 50,
                                           60, 70, 80, 90, 100, 110,
                                           120, 130, 140, 150};
    alignas(64) const int32_t perm[16] = {0, 0, 0, 0, 1, 1, 1, 1,
                                          2, 2, 2, 2, 3, 3, 3, 3};
    simd::permute(Vec<int32_t>::load(table), Vec<int32_t>::load(perm))
        .store(got);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(got[i], table[i / 4]) << i;

    alignas(64) double dgot[8];
    simd::dupHalves(1.5, -2.5).storeu(dgot);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(dgot[i], i < 4 ? 1.5 : -2.5) << i;

    const float wf[4] = {0.5f, 1.5f, 2.5f, 3.5f};
    simd::dup4Floats(wf).storeu(dgot);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(dgot[i], static_cast<double>(wf[i % 4])) << i;
    simd::dup4Floats(wf, 2).storeu(dgot);
    EXPECT_EQ(dgot[0], 0.5);
    EXPECT_EQ(dgot[1], 1.5);
    EXPECT_EQ(dgot[2], 0.0) << "masked tail converts from zero";

    const float w8[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    simd::cvt8Floats(w8, 0x1fu).storeu(dgot);
    EXPECT_EQ(dgot[4], 5.0);
    EXPECT_EQ(dgot[5], 0.0);

    EXPECT_EQ(simd::reduceMaxU32(Vec<int32_t>::load(table)), 150u);
}

#endif // SCNN_SIMD_AVX512

TEST(Simd, NarrowToFloatMatchesScalarCast)
{
    if constexpr (simd::kVectorBuild) {
        constexpr int WD = Vec<double>::kLanes;
        simd::AlignedVec<double> src(2 * WD);
        for (int i = 0; i < 2 * WD; ++i)
            src[i] = -1.3 * i + 4.0;
        simd::AlignedVec<float> got(2 * WD);
        simd::narrowToFloat(Vec<double>::load(src.data()),
                            Vec<double>::load(src.data() + WD))
            .storeu(got.data());
        for (int i = 0; i < 2 * WD; ++i)
            EXPECT_EQ(got[i], static_cast<float>(src[i])) << i;
    }
}

} // anonymous namespace
} // namespace scnn
