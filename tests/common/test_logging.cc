/** @file Unit tests for logging/formatting helpers. */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace scnn {
namespace {

TEST(StrFmt, FormatsLikePrintf)
{
    EXPECT_EQ(strfmt("plain"), "plain");
    EXPECT_EQ(strfmt("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strfmt("%s/%s", "a", "b"), "a/b");
}

TEST(StrFmt, HandlesLongStrings)
{
    const std::string big(10000, 'x');
    EXPECT_EQ(strfmt("%s", big.c_str()).size(), big.size());
}

TEST(StrFmt, EmptyResult)
{
    EXPECT_EQ(strfmt("%s", ""), "");
}

TEST(Quiet, TogglesAndRestores)
{
    const bool prev = setQuiet(true);
    EXPECT_TRUE(isQuiet());
    warn("this warning must be suppressed %d", 42);
    inform("this info must be suppressed");
    EXPECT_TRUE(setQuiet(prev));
    EXPECT_EQ(isQuiet(), prev);
}

TEST(Assert, PassingConditionIsSilent)
{
    SCNN_ASSERT(1 + 1 == 2, "math works (%d)", 2);
    SUCCEED();
}

TEST(Assert, FailingConditionAborts)
{
    EXPECT_DEATH(
        { SCNN_ASSERT(false, "value was %d", 7); }, "value was 7");
}

TEST(Panic, Aborts)
{
    EXPECT_DEATH({ panic("boom %s", "now"); }, "boom now");
}

TEST(Fatal, ExitsWithStatusOne)
{
    EXPECT_EXIT({ fatal("bad config %d", 3); },
                ::testing::ExitedWithCode(1), "bad config 3");
}

} // anonymous namespace
} // namespace scnn
