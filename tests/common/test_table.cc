/** @file Unit tests for the table/CSV printer. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/table.hh"

namespace scnn {
namespace {

TEST(Table, RendersAlignedColumns)
{
    Table t("demo", {"Layer", "Cycles"});
    t.addRow({"conv1", "123"});
    t.addRow({"a_much_longer_name", "7"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("Layer"), std::string::npos);
    EXPECT_NE(s.find("a_much_longer_name"), std::string::npos);
    // Header separator exists.
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(Table, RowArityMismatchPanics)
{
    Table t("bad", {"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

TEST(Table, RowsAccessors)
{
    Table t("acc", {"x"});
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.row(1)[0], "2");
}

TEST(Table, CsvMirrorWhenEnvSet)
{
    const std::string dir = ::testing::TempDir();
    setenv("SCNN_CSV_DIR", dir.c_str(), 1);
    Table t("csv_check", {"a", "b"});
    t.addRow({"1", "2"});
    t.print();
    unsetenv("SCNN_CSV_DIR");

    std::ifstream in(dir + "/csv_check.csv");
    ASSERT_TRUE(in.good());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
}

} // anonymous namespace
} // namespace scnn
