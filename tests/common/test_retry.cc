/**
 * @file
 * The retry policy's contract: deterministic jittered delays,
 * exponential growth with a ceiling, and hard budgets over attempts
 * and planned delay.  Every reconnect/retry site in the fleet leans
 * on these properties, so they are pinned here rather than assumed.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/retry.hh"

namespace scnn {
namespace {

std::vector<double>
drain(RetrySchedule &s)
{
    std::vector<double> delays;
    double d = 0.0;
    while (s.next(d))
        delays.push_back(d);
    return delays;
}

TEST(RetryPolicy, ValidationCatchesEveryBadField)
{
    EXPECT_EQ(validateRetryPolicy(RetryPolicy()), "");
    RetryPolicy p;
    p.baseDelayMs = -1.0;
    EXPECT_NE(validateRetryPolicy(p), "");
    p = RetryPolicy();
    p.multiplier = 0.5;
    EXPECT_NE(validateRetryPolicy(p), "");
    p = RetryPolicy();
    p.maxDelayMs = p.baseDelayMs / 2;
    EXPECT_NE(validateRetryPolicy(p), "");
    p = RetryPolicy();
    p.jitter = 1.0;
    EXPECT_NE(validateRetryPolicy(p), "");
    p = RetryPolicy();
    p.jitter = -0.1;
    EXPECT_NE(validateRetryPolicy(p), "");
    p = RetryPolicy();
    p.maxAttempts = -3;
    EXPECT_NE(validateRetryPolicy(p), "");
    // Unbounded both ways is the one combination that can spin
    // forever; it must be rejected.
    p = RetryPolicy();
    p.maxAttempts = 0;
    p.deadlineMs = 0.0;
    EXPECT_NE(validateRetryPolicy(p), "");
    p.deadlineMs = 100.0;
    EXPECT_EQ(validateRetryPolicy(p), "");
}

TEST(RetrySchedule, SameSeedAndLabelGiveTheSameDelaySequence)
{
    RetryPolicy p;
    p.maxAttempts = 6;
    RetrySchedule a(p, 42, "shard 0");
    RetrySchedule b(p, 42, "shard 0");
    EXPECT_EQ(drain(a), drain(b));
}

TEST(RetrySchedule, SeedAndLabelBothChangeTheJitter)
{
    RetryPolicy p;
    p.maxAttempts = 6;
    RetrySchedule a(p, 42, "shard 0");
    RetrySchedule b(p, 43, "shard 0");
    RetrySchedule c(p, 42, "shard 1");
    const std::vector<double> da = drain(a);
    EXPECT_NE(da, drain(b));
    EXPECT_NE(da, drain(c));
}

TEST(RetrySchedule, GrowsExponentiallyAndClampsAtTheCeiling)
{
    RetryPolicy p;
    p.baseDelayMs = 10.0;
    p.multiplier = 2.0;
    p.maxDelayMs = 50.0;
    p.jitter = 0.0; // exact values
    p.maxAttempts = 6;
    RetrySchedule s(p, 1, "x");
    const std::vector<double> expect = {10.0, 20.0, 40.0,
                                        50.0, 50.0, 50.0};
    EXPECT_EQ(drain(s), expect);
}

TEST(RetrySchedule, JitterStaysWithinTheConfiguredBand)
{
    RetryPolicy p;
    p.baseDelayMs = 100.0;
    p.multiplier = 1.0; // constant base: the band is easy to check
    p.maxDelayMs = 100.0;
    p.jitter = 0.25;
    p.maxAttempts = 200;
    RetrySchedule s(p, 7, "band");
    double lo = 1e9, hi = 0.0;
    for (double d : drain(s)) {
        EXPECT_GE(d, 75.0);
        EXPECT_LT(d, 125.0);
        lo = std::min(lo, d);
        hi = std::max(hi, d);
    }
    // 200 draws must actually spread across the band, not collapse.
    EXPECT_LT(lo, 90.0);
    EXPECT_GT(hi, 110.0);
}

TEST(RetrySchedule, DeadlineCapsTheSumOfPlannedDelays)
{
    RetryPolicy p;
    p.baseDelayMs = 10.0;
    p.multiplier = 2.0;
    p.maxDelayMs = 1000.0;
    p.jitter = 0.0;
    p.maxAttempts = 0;     // deadline is the only bound
    p.deadlineMs = 100.0;  // 10 + 20 + 40 = 70; +80 would break it
    RetrySchedule s(p, 1, "x");
    const std::vector<double> expect = {10.0, 20.0, 40.0};
    EXPECT_EQ(drain(s), expect);
    EXPECT_EQ(s.attempts(), 3);
    EXPECT_DOUBLE_EQ(s.plannedMs(), 70.0);
    // Exhausted stays exhausted.
    double d = 0.0;
    EXPECT_FALSE(s.next(d));
}

TEST(RetrySchedule, AttemptCapWins)
{
    RetryPolicy p;
    p.jitter = 0.0;
    p.maxAttempts = 2;
    p.deadlineMs = 1e9;
    RetrySchedule s(p, 1, "x");
    EXPECT_EQ(drain(s).size(), 2u);
}

TEST(RetrySchedule, ResetReplaysTheIdenticalSequence)
{
    RetryPolicy p;
    p.maxAttempts = 5;
    RetrySchedule s(p, 99, "replay");
    const std::vector<double> first = drain(s);
    s.reset();
    EXPECT_EQ(s.attempts(), 0);
    EXPECT_DOUBLE_EQ(s.plannedMs(), 0.0);
    EXPECT_EQ(drain(s), first);
}

TEST(RetrySchedule, ZeroBaseDelayIsLegalAndTerminates)
{
    // An immediate-retry policy (base 0) must still honour the
    // attempt cap -- and with a delay-sum deadline only, delay 0
    // never consumes budget, which is exactly why validation demands
    // an attempt cap alongside it in practice.
    RetryPolicy p;
    p.baseDelayMs = 0.0;
    p.maxDelayMs = 0.0;
    p.multiplier = 1.0;
    p.jitter = 0.0;
    p.maxAttempts = 3;
    RetrySchedule s(p, 1, "x");
    const std::vector<double> expect = {0.0, 0.0, 0.0};
    EXPECT_EQ(drain(s), expect);
}

} // namespace
} // namespace scnn
