/** @file Unit tests for the streaming JSON writer. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.hh"

namespace scnn {
namespace {

TEST(JsonWriter, ObjectWithMixedValues)
{
    JsonWriter w;
    w.beginObject();
    w.key("name").value("fig8");
    w.key("threads").value(4);
    w.key("wall_ms").value(12.5);
    w.key("ok").value(true);
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"name\":\"fig8\",\"threads\":4,\"wall_ms\":12.5,"
              "\"ok\":true}");
}

TEST(JsonWriter, NestedArraysAndObjects)
{
    JsonWriter w;
    w.beginObject();
    w.key("points").beginArray();
    for (int i = 0; i < 2; ++i) {
        w.beginObject();
        w.key("i").value(i);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"points\":[{\"i\":0},{\"i\":1}]}");
}

TEST(JsonWriter, TopLevelArray)
{
    JsonWriter w;
    w.beginArray();
    w.value(1).value(2).value(3);
    w.endArray();
    EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(JsonWriter, EscapesStrings)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, LargeCountsExactAndNonFiniteNull)
{
    JsonWriter w;
    w.beginObject();
    w.key("cycles").value(static_cast<uint64_t>(1) << 53);
    w.key("bad").value(0.0 / 0.0);
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"cycles\":9007199254740992,\"bad\":null}");
}

TEST(JsonWriter, UnbalancedDocumentPanics)
{
    JsonWriter w;
    w.beginObject();
    EXPECT_DEATH({ (void)w.str(); }, "unbalanced");
}

TEST(JsonWriter, WriteJsonFileRoundTrips)
{
    JsonWriter w;
    w.beginObject();
    w.key("x").value(1);
    w.endObject();
    const std::string path = ::testing::TempDir() + "scnn_json_test.json";
    ASSERT_TRUE(writeJsonFile(path, w.str()));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), "{\"x\":1}\n");
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace scnn
