/** @file Unit tests for the streaming JSON writer. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.hh"

namespace scnn {
namespace {

TEST(JsonWriter, ObjectWithMixedValues)
{
    JsonWriter w;
    w.beginObject();
    w.key("name").value("fig8");
    w.key("threads").value(4);
    w.key("wall_ms").value(12.5);
    w.key("ok").value(true);
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"name\":\"fig8\",\"threads\":4,\"wall_ms\":12.5,"
              "\"ok\":true}");
}

TEST(JsonWriter, NestedArraysAndObjects)
{
    JsonWriter w;
    w.beginObject();
    w.key("points").beginArray();
    for (int i = 0; i < 2; ++i) {
        w.beginObject();
        w.key("i").value(i);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"points\":[{\"i\":0},{\"i\":1}]}");
}

TEST(JsonWriter, TopLevelArray)
{
    JsonWriter w;
    w.beginArray();
    w.value(1).value(2).value(3);
    w.endArray();
    EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(JsonWriter, EscapesStrings)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, LargeCountsExactAndNonFiniteNull)
{
    JsonWriter w;
    w.beginObject();
    w.key("cycles").value(static_cast<uint64_t>(1) << 53);
    w.key("bad").value(0.0 / 0.0);
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"cycles\":9007199254740992,\"bad\":null}");
}

TEST(JsonWriter, UnbalancedDocumentPanics)
{
    JsonWriter w;
    w.beginObject();
    EXPECT_DEATH({ (void)w.str(); }, "unbalanced");
}

TEST(JsonWriter, WriteJsonFileRoundTrips)
{
    JsonWriter w;
    w.beginObject();
    w.key("x").value(1);
    w.endObject();
    const std::string path = ::testing::TempDir() + "scnn_json_test.json";
    ASSERT_TRUE(writeJsonFile(path, w.str()));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), "{\"x\":1}\n");
    std::remove(path.c_str());
}

TEST(JsonParser, ParsesScalarsArraysAndObjects)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(
        "{\"a\": 1, \"b\": [true, false, null], \"c\": {\"d\": "
        "\"text\"}, \"e\": -2.5e3}",
        v, err))
        << err;
    ASSERT_TRUE(v.isObject());
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    EXPECT_TRUE(a->isUnsigned);
    EXPECT_EQ(a->uint64, 1u);
    const JsonValue *b = v.find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(b->array.size(), 3u);
    EXPECT_TRUE(b->array[0].boolean);
    EXPECT_TRUE(b->array[2].isNull());
    EXPECT_EQ(v.find("c")->find("d")->string, "text");
    EXPECT_DOUBLE_EQ(v.find("e")->number, -2500.0);
    EXPECT_FALSE(v.find("e")->isUnsigned);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParser, Exact64BitSeedsSurviveParsing)
{
    // 2^53 + 1 is not representable as a double; the uint64 view must
    // keep the exact value for seeds.
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson("9007199254740993", v, err)) << err;
    ASSERT_TRUE(v.isUnsigned);
    EXPECT_EQ(v.uint64, 9007199254740993ull);
    ASSERT_TRUE(parseJson("18446744073709551615", v, err)) << err;
    EXPECT_EQ(v.uint64, 18446744073709551615ull);
    // One past uint64 max: still a valid JSON number (as a double),
    // but no exact unsigned view.
    ASSERT_TRUE(parseJson("18446744073709551616", v, err)) << err;
    EXPECT_FALSE(v.isUnsigned);
}

TEST(JsonParser, DecodesEscapesAndUtf16Surrogates)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(
        R"("line\nquote\" back\\ \u00e9\u20ac\ud83d\ude00 raw")",
        v, err))
        << err;
    EXPECT_EQ(v.string, "line\nquote\" back\\ \xc3\xa9\xe2\x82\xac"
                        "\xf0\x9f\x98\x80 raw");
}

TEST(JsonParser, RoundTripsTheWriterOutput)
{
    JsonWriter w;
    w.beginObject();
    w.key("name").value("scnn \"quoted\" \n");
    w.key("count").value(uint64_t(42));
    w.key("ratio").value(0.3333333333333333);
    w.key("flags").beginArray();
    w.value(true).value(false);
    w.endArray();
    w.endObject();
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(w.str(), v, err)) << err;
    EXPECT_EQ(v.find("name")->string, "scnn \"quoted\" \n");
    EXPECT_EQ(v.find("count")->uint64, 42u);
    EXPECT_DOUBLE_EQ(v.find("ratio")->number, 0.3333333333333333);
    ASSERT_EQ(v.find("flags")->array.size(), 2u);
}

TEST(JsonParser, EnforcesConfiguredLimits)
{
    JsonValue v;
    std::string err;
    JsonParseLimits limits;
    limits.maxDepth = 3;
    EXPECT_FALSE(parseJson("[[[[1]]]]", v, err, limits));
    EXPECT_NE(err.find("depth"), std::string::npos) << err;

    limits = JsonParseLimits();
    limits.maxStringBytes = 4;
    EXPECT_FALSE(parseJson("\"abcdefgh\"", v, err, limits));
    EXPECT_NE(err.find("length"), std::string::npos) << err;

    limits = JsonParseLimits();
    limits.maxElements = 3;
    EXPECT_FALSE(parseJson("[1,2,3,4]", v, err, limits));
    EXPECT_NE(err.find("elements"), std::string::npos) << err;

    limits = JsonParseLimits();
    limits.maxDocumentBytes = 8;
    EXPECT_FALSE(parseJson("[1,2,3,4,5]", v, err, limits));
    EXPECT_NE(err.find("limit"), std::string::npos) << err;
}

TEST(JsonParser, ReportsThePositionOfTheFirstError)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson("{\"ok\": 1, \"bad\": tru}", v, err));
    EXPECT_NE(err.find("at byte"), std::string::npos) << err;
}

} // anonymous namespace
} // namespace scnn
