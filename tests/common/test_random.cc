/** @file Unit tests for the deterministic PRNG. */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"

namespace scnn {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, LabelledStreamsAreIndependent)
{
    Rng a("alexnet/conv1/weights", 7);
    Rng b("alexnet/conv2/weights", 7);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-2.5, 7.5);
        ASSERT_GE(v, -2.5);
        ASSERT_LT(v, 7.5);
    }
}

TEST(Rng, UniformIntCoversRangeUniformly)
{
    Rng rng(5);
    std::vector<int> counts(10, 0);
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(10)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(Rng, UniformIntOneAlwaysZero)
{
    Rng rng(6);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.uniformInt(1), 0u);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(8);
    const double p = 0.35;
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(p);
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, NormalMomentsAreStandard)
{
    Rng rng(10);
    const int n = 50000;
    double sum = 0.0;
    double sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SplitProducesIndependentChild)
{
    Rng parent(11);
    Rng child = parent.split("child");
    // Child's stream should not mirror the parent's continuation.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (parent.next() == child.next());
    EXPECT_LT(same, 2);
}

TEST(HashLabel, StableAndDistinct)
{
    EXPECT_EQ(hashLabel("abc"), hashLabel("abc"));
    std::set<uint64_t> hashes;
    for (const char *s : {"a", "b", "ab", "ba", "conv1", "conv2"})
        hashes.insert(hashLabel(s));
    EXPECT_EQ(hashes.size(), 6u);
}

} // anonymous namespace
} // namespace scnn
