/** @file Unit tests for counters, accumulators, histograms, StatSet. */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace scnn {
namespace {

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 9;
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, TracksMoments)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(3.0);
    a.sample(-2.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 2.0);
    EXPECT_NEAR(a.mean(), 2.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(a.min(), -2.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(Histogram, BucketsAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(0.5);
    h.sample(9.5);
    h.sample(-100.0); // clamps into first bucket
    h.sample(100.0);  // clamps into last bucket
    EXPECT_EQ(h.totalSamples(), 4u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(9), 2u);
}

TEST(Histogram, WeightedSamplesAndMean)
{
    Histogram h(0.0, 4.0, 4);
    h.sample(1.0, 3);
    h.sample(3.0, 1);
    EXPECT_EQ(h.totalSamples(), 4u);
    EXPECT_NEAR(h.mean(), (3.0 * 1.0 + 3.0) / 4.0, 1e-12);
}

TEST(Histogram, BucketBounds)
{
    Histogram h(2.0, 12.0, 5);
    EXPECT_DOUBLE_EQ(h.bucketLo(0), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketHi(0), 4.0);
    EXPECT_DOUBLE_EQ(h.bucketLo(4), 10.0);
    EXPECT_DOUBLE_EQ(h.bucketHi(4), 12.0);
}

TEST(Histogram, ToStringMentionsNameAndCounts)
{
    Histogram h(0.0, 2.0, 2);
    h.sample(0.5);
    const std::string s = h.toString("conflicts");
    EXPECT_NE(s.find("conflicts"), std::string::npos);
    EXPECT_NE(s.find("n=1"), std::string::npos);
}

TEST(StatSet, SetAddGet)
{
    StatSet s;
    EXPECT_FALSE(s.has("x"));
    s.set("x", 2.0);
    s.add("x", 3.0);
    s.add("y", 1.0);
    EXPECT_TRUE(s.has("x"));
    EXPECT_DOUBLE_EQ(s.get("x"), 5.0);
    EXPECT_DOUBLE_EQ(s.get("y"), 1.0);
    EXPECT_DOUBLE_EQ(s.getOr("z", -1.0), -1.0);
}

TEST(StatSet, GetMissingIsFatal)
{
    StatSet s;
    EXPECT_EXIT(s.get("missing"), ::testing::ExitedWithCode(1),
                "missing");
}

TEST(StatSet, AccumulateSums)
{
    StatSet a;
    StatSet b;
    a.set("cycles", 10.0);
    b.set("cycles", 5.0);
    b.set("energy", 2.0);
    a.accumulate(b);
    EXPECT_DOUBLE_EQ(a.get("cycles"), 15.0);
    EXPECT_DOUBLE_EQ(a.get("energy"), 2.0);
}

} // anonymous namespace
} // namespace scnn
