/**
 * @file
 * Thread-count determinism: every parallel section in the stack
 * (per-(PE, group) passes, per-layer fan-out, sweep fan-out) must
 * produce bit-identical results for any thread count.  The subsystem
 * achieves this by giving each unit of work private result slots and
 * merging serially in a fixed order; these tests pin the guarantee
 * end-to-end, including the paper-scale AlexNet comparison.
 */

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "driver/experiments.hh"
#include "nn/model_zoo.hh"
#include "nn/workload.hh"
#include "scnn/simulator.hh"
#include "tensor/tensor.hh"

namespace scnn {
namespace {

void
expectLayerResultsIdentical(const LayerResult &a, const LayerResult &b,
                            const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.computeCycles, b.computeCycles) << what;
    EXPECT_EQ(a.drainExposedCycles, b.drainExposedCycles) << what;
    EXPECT_EQ(a.mulArrayOps, b.mulArrayOps) << what;
    EXPECT_EQ(a.products, b.products) << what;
    EXPECT_EQ(a.landedProducts, b.landedProducts) << what;
    EXPECT_EQ(a.denseMacs, b.denseMacs) << what;
    EXPECT_EQ(a.dramWeightBits, b.dramWeightBits) << what;
    EXPECT_EQ(a.dramActBits, b.dramActBits) << what;
    EXPECT_EQ(a.dramTiled, b.dramTiled) << what;
    // Doubles compared for exact bit-equality: the merge order is
    // fixed, so not even the last ulp may move with the thread count.
    EXPECT_EQ(a.energyPj, b.energyPj) << what;
    EXPECT_EQ(a.multUtilBusy, b.multUtilBusy) << what;
    EXPECT_EQ(a.multUtilOverall, b.multUtilOverall) << what;
    EXPECT_EQ(a.peIdleFraction, b.peIdleFraction) << what;
    EXPECT_EQ(a.stats.entries(), b.stats.entries()) << what;
    if (a.output.channels() > 0 && b.output.channels() > 0)
        EXPECT_EQ(maxAbsDiff(a.output, b.output), 0.0) << what;
}

TEST(ThreadDeterminism, ScnnLayerBitIdenticalAcrossThreadCounts)
{
    const ConvLayerParams p =
        makeConv("det_layer", 48, 64, 28, 3, 1, 0.35, 0.4);
    const LayerWorkload w = makeWorkload(p, 77);
    ScnnSimulator sim(scnnConfig());

    RunOptions base;
    base.threads = 1;
    const LayerResult serial = sim.runLayer(w, base);
    for (int threads : {2, 3, 8}) {
        RunOptions opts;
        opts.threads = threads;
        expectLayerResultsIdentical(
            serial, sim.runLayer(w, opts),
            "threads=" + std::to_string(threads));
    }
}

TEST(ThreadDeterminism, InputHaloModeBitIdentical)
{
    AcceleratorConfig cfg = scnnConfig();
    cfg.pe.inputHalos = true;
    const ConvLayerParams p =
        makeConv("det_halo", 32, 32, 24, 3, 1, 0.4, 0.5);
    const LayerWorkload w = makeWorkload(p, 5);
    ScnnSimulator sim(cfg);

    RunOptions one;
    one.threads = 1;
    RunOptions eight;
    eight.threads = 8;
    expectLayerResultsIdentical(sim.runLayer(w, one),
                                sim.runLayer(w, eight), "input halos");
}

/**
 * The ISSUE's headline guarantee: compareNetwork on AlexNet yields
 * identical NetworkComparison results with 1, 2 and 8 threads.
 */
TEST(ThreadDeterminism, AlexNetComparisonIdenticalAt1_2_8Threads)
{
    const Network net = alexNet();
    const NetworkComparison ref = compareNetwork(net, kExperimentSeed,
                                                 /*threads=*/1);
    for (int threads : {2, 8}) {
        const NetworkComparison cmp =
            compareNetwork(net, kExperimentSeed, threads);
        ASSERT_EQ(cmp.layers.size(), ref.layers.size());
        for (size_t i = 0; i < ref.layers.size(); ++i) {
            const std::string what = ref.layers[i].layerName +
                                     " threads=" +
                                     std::to_string(threads);
            EXPECT_EQ(cmp.layers[i].layerName,
                      ref.layers[i].layerName);
            EXPECT_EQ(cmp.layers[i].oracleCycles,
                      ref.layers[i].oracleCycles)
                << what;
            expectLayerResultsIdentical(cmp.layers[i].scnn,
                                        ref.layers[i].scnn,
                                        what + " scnn");
            expectLayerResultsIdentical(cmp.layers[i].dcnn,
                                        ref.layers[i].dcnn,
                                        what + " dcnn");
            expectLayerResultsIdentical(cmp.layers[i].dcnnOpt,
                                        ref.layers[i].dcnnOpt,
                                        what + " dcnn-opt");
        }
        EXPECT_EQ(cmp.totalScnnEnergy(), ref.totalScnnEnergy());
        EXPECT_EQ(cmp.networkSpeedupScnn(), ref.networkSpeedupScnn());
    }
}

TEST(ThreadDeterminism, SweepsIdenticalAcrossThreadCounts)
{
    const Network tiny = tinyTestNetwork();

    const auto d1 = densitySweep(tiny, {0.2, 0.5, 0.8}, 1);
    const auto d8 = densitySweep(tiny, {0.2, 0.5, 0.8}, 8);
    ASSERT_EQ(d1.size(), d8.size());
    for (size_t i = 0; i < d1.size(); ++i) {
        EXPECT_EQ(d1[i].scnnCycles, d8[i].scnnCycles);
        EXPECT_EQ(d1[i].scnnEnergy, d8[i].scnnEnergy);
        EXPECT_EQ(d1[i].dcnnCycles, d8[i].dcnnCycles);
        EXPECT_EQ(d1[i].dcnnEnergy, d8[i].dcnnEnergy);
        EXPECT_EQ(d1[i].dcnnOptEnergy, d8[i].dcnnOptEnergy);
    }

    const std::vector<std::pair<int, int>> grids = {{2, 2}, {4, 4}};
    const auto g1 = peGranularitySweep(tiny, grids, 5, false, 1);
    const auto g8 = peGranularitySweep(tiny, grids, 5, false, 8);
    ASSERT_EQ(g1.size(), g8.size());
    for (size_t i = 0; i < g1.size(); ++i) {
        EXPECT_EQ(g1[i].cycles, g8[i].cycles);
        EXPECT_EQ(g1[i].mathUtilization, g8[i].mathUtilization);
        EXPECT_EQ(g1[i].peIdleFraction, g8[i].peIdleFraction);
    }
}

TEST(ThreadDeterminism, ChainedRunIdenticalAcrossThreadCounts)
{
    // Chained execution feeds each layer the previous layer's actual
    // output, so any thread-count dependence would compound; pin it.
    const Network net = tinyTestNetwork();
    ScnnSimulator sim(scnnConfig());
    setDefaultThreads(1);
    const NetworkResult a = sim.runNetworkChained(net, 9);
    setDefaultThreads(8);
    const NetworkResult b = sim.runNetworkChained(net, 9);
    setDefaultThreads(0);
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (size_t i = 0; i < a.layers.size(); ++i) {
        expectLayerResultsIdentical(a.layers[i], b.layers[i],
                                    "chained layer " +
                                        std::to_string(i));
    }
}

} // anonymous namespace
} // namespace scnn
