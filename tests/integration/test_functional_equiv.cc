/**
 * @file
 * End-to-end functional equivalence: the SCNN cycle-level simulator
 * and the dense DCNN simulator must produce the same output
 * activations as the reference convolution, across layer geometries
 * (stride, padding, channel groups, 1x1 filters) and densities.  This
 * validates the compressed encodings, phase decomposition, coordinate
 * computation, tiling and halo handling end-to-end.
 */

#include <gtest/gtest.h>

#include "dcnn/simulator.hh"
#include "nn/model_zoo.hh"
#include "nn/reference.hh"
#include "nn/workload.hh"
#include "scnn/simulator.hh"

namespace scnn {
namespace {

ConvLayerParams
layerFor(const std::string &name, int c, int k, int w, int h, int rs,
         int stride, int pad, int groups, double wd, double ad)
{
    ConvLayerParams p;
    p.name = name;
    p.inChannels = c;
    p.outChannels = k;
    p.inWidth = w;
    p.inHeight = h;
    p.filterW = rs;
    p.filterH = rs;
    p.strideX = stride;
    p.strideY = stride;
    p.padX = pad;
    p.padY = pad;
    p.groups = groups;
    p.weightDensity = wd;
    p.inputDensity = ad;
    p.validate();
    return p;
}

class FunctionalEquivalence
    : public ::testing::TestWithParam<ConvLayerParams>
{
};

TEST_P(FunctionalEquivalence, ScnnMatchesReference)
{
    const ConvLayerParams layer = GetParam();
    const LayerWorkload w = makeWorkload(layer, 1234);
    const Tensor3 expected =
        referenceConv(layer, w.input, w.weights);

    ScnnSimulator sim(scnnConfig());
    const LayerResult res = sim.runLayer(w);
    ASSERT_EQ(res.output.channels(), expected.channels());
    EXPECT_LT(maxAbsDiff(res.output, expected), 1e-3)
        << "layer " << layer.name;
}

TEST_P(FunctionalEquivalence, DcnnMatchesReference)
{
    const ConvLayerParams layer = GetParam();
    const LayerWorkload w = makeWorkload(layer, 1234);
    const Tensor3 expected =
        referenceConv(layer, w.input, w.weights);

    DcnnSimulator sim(dcnnConfig());
    DcnnRunOptions opts;
    opts.functional = true;
    const LayerResult res = sim.runLayer(w, opts);
    EXPECT_LT(maxAbsDiff(res.output, expected), 1e-3)
        << "layer " << layer.name;
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, FunctionalEquivalence,
    ::testing::Values(
        layerFor("basic3x3", 8, 16, 20, 20, 3, 1, 1, 1, 0.5, 0.5),
        layerFor("one_by_one", 16, 32, 14, 14, 1, 1, 0, 1, 0.4, 0.4),
        layerFor("valid_conv", 4, 8, 17, 17, 3, 1, 0, 1, 0.6, 0.6),
        layerFor("strided", 3, 12, 23, 23, 5, 2, 2, 1, 0.7, 0.9),
        layerFor("stride4", 3, 8, 27, 27, 7, 4, 0, 1, 0.8, 1.0),
        layerFor("grouped", 8, 16, 13, 13, 3, 1, 1, 2, 0.5, 0.5),
        layerFor("grouped4", 16, 16, 9, 9, 3, 1, 1, 4, 0.5, 0.5),
        layerFor("tiny_plane", 32, 48, 7, 7, 3, 1, 1, 1, 0.4, 0.4),
        layerFor("single_pixel", 24, 24, 1, 1, 1, 1, 0, 1, 0.5, 0.5),
        layerFor("wide_filter", 4, 4, 19, 19, 5, 1, 2, 1, 0.5, 0.5),
        layerFor("rect_like", 6, 10, 31, 15, 3, 1, 1, 1, 0.45, 0.55),
        layerFor("fully_dense", 8, 8, 12, 12, 3, 1, 1, 1, 1.0, 1.0),
        layerFor("very_sparse", 8, 8, 16, 16, 3, 1, 1, 1, 0.05, 0.05)),
    [](const ::testing::TestParamInfo<ConvLayerParams> &info) {
        return info.param.name;
    });

/** Rectangular (non-square) stride/pad combinations. */
TEST(FunctionalEquivalenceExtra, AsymmetricStridePad)
{
    ConvLayerParams p;
    p.name = "asym";
    p.inChannels = 5;
    p.outChannels = 7;
    p.inWidth = 22;
    p.inHeight = 17;
    p.filterW = 3;
    p.filterH = 5;
    p.strideX = 2;
    p.strideY = 1;
    p.padX = 1;
    p.padY = 2;
    p.weightDensity = 0.5;
    p.inputDensity = 0.6;
    p.validate();

    const LayerWorkload w = makeWorkload(p, 99);
    const Tensor3 expected = referenceConv(p, w.input, w.weights);
    ScnnSimulator sim(scnnConfig());
    EXPECT_LT(maxAbsDiff(sim.runLayer(w).output, expected), 1e-3);
}

/** ReLU disabled must return raw partial sums. */
TEST(FunctionalEquivalenceExtra, NoRelu)
{
    ConvLayerParams p = layerFor("norelu", 6, 6, 10, 10, 3, 1, 1, 1,
                                 0.5, 0.5);
    p.applyRelu = false;
    const LayerWorkload w = makeWorkload(p, 7);
    const Tensor3 expected = referenceConvNoRelu(p, w.input, w.weights);
    ScnnSimulator sim(scnnConfig());
    EXPECT_LT(maxAbsDiff(sim.runLayer(w).output, expected), 1e-3);
}

/** Equivalence must hold for non-default PE grids (Section VI-C). */
TEST(FunctionalEquivalenceExtra, AlternatePeGrids)
{
    const ConvLayerParams p =
        layerFor("grid", 8, 16, 19, 19, 3, 1, 1, 1, 0.5, 0.5);
    const LayerWorkload w = makeWorkload(p, 5);
    const Tensor3 expected = referenceConv(p, w.input, w.weights);
    for (auto [r, c] : {std::pair{2, 2}, {4, 4}, {4, 8}}) {
        ScnnSimulator sim(scnnWithPeGrid(r, c));
        EXPECT_LT(maxAbsDiff(sim.runLayer(w).output, expected), 1e-3)
            << r << "x" << c;
    }
}

} // anonymous namespace
} // namespace scnn
