/**
 * @file
 * Determinism and manifest-identity suite for the generic DAG
 * executor: residual, depthwise and branch/concat topologies must be
 * bit-identical at 1, 2 and 8 worker threads; a run from a weight
 * manifest carrying the synthetic tensors must be bit-identical to
 * the synthetic run; and the session/backend boundary must route
 * DAG-shaped networks through the executor on every chainedDag
 * backend.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "driver/dag_runner.hh"
#include "nn/manifest.hh"
#include "nn/model_zoo.hh"
#include "sim/session.hh"

namespace scnn {
namespace {

/** Bit-exact equality of two layer results (tensors included). */
void
expectIdentical(const LayerResult &a, const LayerResult &b)
{
    EXPECT_EQ(a.layerName, b.layerName);
    EXPECT_EQ(a.cycles, b.cycles) << a.layerName;
    EXPECT_EQ(a.computeCycles, b.computeCycles) << a.layerName;
    EXPECT_EQ(a.products, b.products) << a.layerName;
    EXPECT_EQ(a.landedProducts, b.landedProducts) << a.layerName;
    EXPECT_EQ(a.energyPj, b.energyPj) << a.layerName;
    EXPECT_EQ(a.dramWeightBits, b.dramWeightBits) << a.layerName;
    EXPECT_EQ(a.dramActBits, b.dramActBits) << a.layerName;
    ASSERT_EQ(a.output.size(), b.output.size()) << a.layerName;
    EXPECT_EQ(std::memcmp(a.output.data(), b.output.data(),
                          a.output.size() * sizeof(float)),
              0)
        << a.layerName;
}

void
expectIdentical(const NetworkResult &a, const NetworkResult &b)
{
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (size_t i = 0; i < a.layers.size(); ++i)
        expectIdentical(a.layers[i], b.layers[i]);
}

NetworkResult
dagRun(const Network &net, int threads,
       const WeightManifest *manifest = nullptr)
{
    ScnnSimulator sim(scnnConfig());
    DagRunOptions opts;
    opts.seed = 99;
    opts.threads = threads;
    opts.manifest = manifest;
    return runNetworkDag(sim, net, opts);
}

/** A fan-out/concat DAG distinct from the zoo entries. */
Network
branchConcatNetwork()
{
    Network net("tiny-branch");
    net.addLayer(makeConv("bc_stem", 3, 8, 16, 3, 1, 0.6, 0.9));
    net.addLayer(makeConv("bc_left", 8, 8, 16, 3, 1, 0.5, 0.5),
                 {LayerInput(0)});
    net.addLayer(makeConv("bc_right", 8, 4, 16, 1, 0, 0.5, 0.5),
                 {LayerInput(0)});
    net.addLayer(makeConv("bc_head", 12, 8, 16, 3, 1, 0.4, 0.4),
                 {LayerInput(1), LayerInput(2)}, JoinKind::Concat);
    return net;
}

class DagDeterminism : public ::testing::TestWithParam<const char *>
{
  protected:
    Network
    pick() const
    {
        const std::string name = GetParam();
        if (name == "tiny-res")
            return tinyResNetwork();
        if (name == "tiny-dw")
            return tinyDwNetwork();
        return branchConcatNetwork();
    }
};

TEST_P(DagDeterminism, BitIdenticalAcrossThreadCounts)
{
    const Network net = pick();
    ASSERT_TRUE(net.topologyErrors().empty());
    const NetworkResult one = dagRun(net, 1);
    ASSERT_EQ(one.layers.size(), net.numLayers());
    expectIdentical(one, dagRun(net, 2));
    expectIdentical(one, dagRun(net, 8));
}

INSTANTIATE_TEST_SUITE_P(Topologies, DagDeterminism,
                         ::testing::Values("tiny-res", "tiny-dw",
                                           "tiny-branch"));

TEST(DagExecutor, ManifestRunMatchesSyntheticRun)
{
    // A manifest carrying the exact synthetic tensors must reproduce
    // the synthetic run bit-for-bit (the round-trip identity that
    // makes real-checkpoint ingestion trustworthy).
    Network net = tinyResNetwork();
    const NetworkResult synthetic = dagRun(net, 2);

    const WeightManifest m = manifestFromNetwork(net, 99);
    std::string error;
    ASSERT_TRUE(applyManifest(net, m, &error)) << error;
    expectIdentical(synthetic, dagRun(net, 2, &m));
}

TEST(DagExecutor, ManifestRunMatchesOnSequentialChainToo)
{
    // Same identity through the sequential chained path (the session
    // routes sequential topologies to runNetworkChained).
    SimulationRequest req;
    req.network = tinyDwNetwork();
    req.seed = 31;
    req.chained = true;
    req.backends = {{"scnn"}};
    const SimulationResponse plain = runSession(req);
    ASSERT_TRUE(plain.runs.front().ok) << plain.runs.front().error;

    auto m = std::make_shared<WeightManifest>(
        manifestFromNetwork(req.network, 31));
    std::string error;
    ASSERT_TRUE(applyManifest(req.network, *m, &error)) << error;
    req.manifest = m;
    const SimulationResponse viaManifest = runSession(req);
    ASSERT_TRUE(viaManifest.runs.front().ok)
        << viaManifest.runs.front().error;
    expectIdentical(plain.runs.front().result,
                    viaManifest.runs.front().result);
}

TEST(DagExecutor, ManifestWeightsActuallyFeedTheRun)
{
    // Doubling the first layer's manifest tensor must change its
    // functional output bit-wise: proves the executor consumes the
    // manifest tensors rather than silently re-synthesizing (which
    // would make ManifestRunMatchesSyntheticRun vacuous).
    const Network net = tinyResNetwork();
    const NetworkResult base = dagRun(net, 1);

    WeightManifest m;
    std::string error;
    const WeightManifest synthetic = manifestFromNetwork(net, 99);
    for (const auto &e : synthetic.entries()) {
        ManifestEntry copy = e;
        if (copy.name == net.layer(0).name)
            for (size_t j = 0; j < copy.weights.size(); ++j)
                copy.weights.data()[j] *= 2.0f;
        ASSERT_TRUE(m.add(std::move(copy), &error)) << error;
    }
    Network rebound = net;
    ASSERT_TRUE(applyManifest(rebound, m, &error)) << error;
    const NetworkResult altered = dagRun(rebound, 1, &m);
    ASSERT_EQ(altered.layers.size(), base.layers.size());
    ASSERT_EQ(altered.layers[0].output.size(),
              base.layers[0].output.size());
    EXPECT_NE(std::memcmp(altered.layers[0].output.data(),
                          base.layers[0].output.data(),
                          base.layers[0].output.size() * sizeof(float)),
              0);
}

TEST(DagExecutor, SessionRoutesDagNetworksOnEveryChainedDagBackend)
{
    for (const char *backend : {"scnn", "oracle"}) {
        SimulationRequest req;
        req.network = tinyResNetwork();
        req.seed = 5;
        req.chained = true;
        req.backends = {{backend}};
        const SimulationResponse resp = runSession(req);
        ASSERT_TRUE(resp.runs.front().ok)
            << backend << ": " << resp.runs.front().error;
        const NetworkResult &nr = resp.runs.front().result;
        EXPECT_EQ(nr.networkName, "tiny-res-chained");
        EXPECT_EQ(nr.layers.size(), req.network.numLayers());
        for (const auto &l : nr.layers)
            EXPECT_TRUE(l.stats.has("chained_input_density"))
                << backend << "/" << l.layerName;
    }
}

} // anonymous namespace
} // namespace scnn
