/**
 * @file
 * Whole-network integration tests: chained layer execution with real
 * activation propagation (output of layer i feeds layer i+1), on-chip
 * capacity behaviour across the paper networks, and pooling between
 * stages.
 */

#include <gtest/gtest.h>

#include "dcnn/simulator.hh"
#include "nn/model_zoo.hh"
#include "nn/reference.hh"
#include "nn/workload.hh"
#include "scnn/simulator.hh"

namespace scnn {
namespace {

constexpr uint64_t kSeed = 99;

/**
 * Chain a small multi-layer network through the SCNN simulator using
 * each layer's actual output as the next layer's input, and compare
 * the final activations against a pure reference-convolution chain.
 */
TEST(NetworkChaining, ScnnMatchesReferenceAcrossLayers)
{
    // Three chained layers (channels line up; includes stride 2).
    std::vector<ConvLayerParams> layers;
    layers.push_back(makeConv("c1", 3, 8, 16, 3, 1, 0.7, 0.8));
    {
        ConvLayerParams l = makeConv("c2", 8, 12, 16, 3, 1, 0.5, 0.5);
        l.strideX = l.strideY = 2;
        l.inWidth = l.inHeight = 16;
        l.padX = l.padY = 1;
        l.validate();
        layers.push_back(l);
    }
    layers.push_back(makeConv("c3", 12, 4, 8, 1, 0, 0.5, 0.5));

    Rng rng("chain", 3);
    Tensor3 act = makeActivations(layers[0], rng);
    Tensor3 refAct = act;

    ScnnSimulator sim(scnnConfig());
    for (auto &layer : layers) {
        // Shapes must chain.
        ASSERT_EQ(layer.inChannels, act.channels());
        layer.inWidth = act.width();
        layer.inHeight = act.height();
        layer.validate();

        Rng wr(layer.name + "/w", 3);
        const Tensor4 weights = makeWeights(layer, wr);

        LayerWorkload w;
        w.layer = layer;
        w.input = act;
        w.weights = weights;
        const LayerResult res = sim.runLayer(w);

        const Tensor3 expect = referenceConv(layer, refAct, weights);
        ASSERT_LT(maxAbsDiff(res.output, expect), 1e-3)
            << "layer " << layer.name;

        act = res.output;
        refAct = expect;
    }
    SUCCEED();
}

TEST(NetworkChaining, PoolingBetweenStages)
{
    // conv -> maxpool -> conv, as in AlexNet's stem.
    const ConvLayerParams c1 = makeConv("p1", 3, 8, 16, 3, 1, 0.8,
                                        0.9);
    Rng rng("pool", 5);
    const Tensor3 in = makeActivations(c1, rng);
    Rng wr1("p1/w", 5);
    const Tensor4 w1 = makeWeights(c1, wr1);

    ScnnSimulator sim(scnnConfig());
    LayerWorkload wl1{c1, in, w1};
    const Tensor3 a1 = sim.runLayer(wl1).output;
    const Tensor3 pooled = maxPool(a1, 2, 2, 0);
    EXPECT_EQ(pooled.width(), 8);

    ConvLayerParams c2 = makeConv("p2", 8, 4, 8, 3, 1, 0.5, 0.5);
    Rng wr2("p2/w", 5);
    const Tensor4 w2 = makeWeights(c2, wr2);
    LayerWorkload wl2{c2, pooled, w2};
    const LayerResult r2 = sim.runLayer(wl2);
    const Tensor3 expect = referenceConv(c2, pooled, w2);
    EXPECT_LT(maxAbsDiff(r2.output, expect), 1e-3);
}

TEST(PaperNetworks, AlexNetAndGoogLeNetStayOnChip)
{
    // Section V: SCNN's 1 MB of compressed activation RAM holds all
    // AlexNet and GoogLeNet (inception) activations.
    ScnnSimulator sim(scnnConfig());
    for (const Network &net : {alexNet(), googLeNet()}) {
        const NetworkResult nr = sim.runNetwork(net, kSeed);
        for (const auto &l : nr.layers)
            EXPECT_FALSE(l.dramTiled)
                << net.name() << "/" << l.layerName;
    }
}

TEST(PaperNetworks, SomeVggLayersTile)
{
    ScnnSimulator sim(scnnConfig());
    const NetworkResult nr = sim.runNetwork(vgg16(), kSeed);
    int tiled = 0;
    for (const auto &l : nr.layers)
        tiled += l.dramTiled;
    // Paper: 9 of 72 evaluated layers (all in VGG) tile.
    EXPECT_GE(tiled, 5);
    EXPECT_LE(tiled, 12);
}

TEST(PaperNetworks, FullyConnectedExtensionRuns)
{
    // FC layers (paper delegates to EIE) run through the 1x1-conv
    // path as an extension.
    const ConvLayerParams fc =
        makeFullyConnected("fc7", 512, 128, 0.1, 0.4);
    const LayerWorkload w = makeWorkload(fc, 9);
    ScnnSimulator sim(scnnConfig());
    const LayerResult r = sim.runLayer(w);
    const Tensor3 expect = referenceConv(fc, w.input, w.weights);
    EXPECT_LT(maxAbsDiff(r.output, expect), 1e-3);
    EXPECT_GT(r.cycles, 0u);
    // Only one PE can own the single pixel: heavy idling expected.
    EXPECT_GT(r.peIdleFraction, 0.5);
}

TEST(PaperNetworks, DcnnHoldsAlexNetGoogLeNetOnChip)
{
    DcnnSimulator sim(dcnnConfig());
    for (const Network &net : {alexNet(), googLeNet()}) {
        const NetworkResult nr =
            sim.runNetwork(net, kSeed, true, false);
        for (const auto &l : nr.layers)
            EXPECT_FALSE(l.dramTiled)
                << net.name() << "/" << l.layerName;
    }
}

} // anonymous namespace
} // namespace scnn
