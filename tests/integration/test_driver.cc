/** @file Unit tests of the driver-layer comparison containers. */

#include <gtest/gtest.h>

#include "driver/experiments.hh"
#include "nn/model_zoo.hh"

namespace scnn {
namespace {

LayerComparison
syntheticComparison(uint64_t dcnn, uint64_t scnn, uint64_t oracle,
                    double dcnnE, double optE, double scnnE)
{
    LayerComparison lc;
    lc.layerName = "synth";
    lc.dcnn.cycles = dcnn;
    lc.scnn.cycles = scnn;
    lc.oracleCycles = oracle;
    lc.dcnn.energyPj = dcnnE;
    lc.dcnnOpt.energyPj = optE;
    lc.scnn.energyPj = scnnE;
    return lc;
}

TEST(LayerComparison, SpeedupsAndEnergyRatios)
{
    const LayerComparison lc =
        syntheticComparison(1000, 400, 100, 10.0, 5.0, 4.0);
    EXPECT_DOUBLE_EQ(lc.speedupScnn(), 2.5);
    EXPECT_DOUBLE_EQ(lc.speedupOracle(), 10.0);
    EXPECT_DOUBLE_EQ(lc.energyRelDcnn(lc.dcnnOpt), 0.5);
    EXPECT_DOUBLE_EQ(lc.energyRelDcnn(lc.scnn), 0.4);
}

TEST(LayerComparison, ZeroGuards)
{
    const LayerComparison lc = syntheticComparison(10, 0, 0, 0, 1, 1);
    EXPECT_DOUBLE_EQ(lc.speedupScnn(), 0.0);
    EXPECT_DOUBLE_EQ(lc.speedupOracle(), 0.0);
    EXPECT_DOUBLE_EQ(lc.energyRelDcnn(lc.scnn), 0.0);
}

TEST(NetworkComparison, AggregatesAreSums)
{
    NetworkComparison cmp;
    cmp.layers.push_back(
        syntheticComparison(1000, 500, 250, 10, 6, 5));
    cmp.layers.push_back(
        syntheticComparison(3000, 1000, 500, 30, 14, 10));
    EXPECT_EQ(cmp.totalDcnnCycles(), 4000u);
    EXPECT_EQ(cmp.totalScnnCycles(), 1500u);
    EXPECT_EQ(cmp.totalOracleCycles(), 750u);
    EXPECT_DOUBLE_EQ(cmp.totalDcnnEnergy(), 40.0);
    EXPECT_DOUBLE_EQ(cmp.totalDcnnOptEnergy(), 20.0);
    EXPECT_DOUBLE_EQ(cmp.totalScnnEnergy(), 15.0);
    EXPECT_NEAR(cmp.networkSpeedupScnn(), 4000.0 / 1500.0, 1e-12);
    EXPECT_NEAR(cmp.networkSpeedupOracle(), 4000.0 / 750.0, 1e-12);
}

TEST(DensitySweep, PointsOrderedByInput)
{
    const auto pts = densitySweep(tinyTestNetwork(), {0.3, 0.6});
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_DOUBLE_EQ(pts[0].density, 0.3);
    EXPECT_DOUBLE_EQ(pts[1].density, 0.6);
}

TEST(GranularitySweep, ReportsGeometry)
{
    Network net("g");
    net.addLayer(makeConv("g1", 16, 16, 16, 3, 1, 0.5, 0.5));
    const auto pts = peGranularitySweep(net, {{4, 4}}, 3);
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0].peRows, 4);
    EXPECT_EQ(pts[0].perPeMultipliers, 64);
    EXPECT_GT(pts[0].cycles, 0u);
    EXPECT_GT(pts[0].mathUtilization, 0.0);
    EXPECT_LE(pts[0].mathUtilization, 1.0);
}

} // anonymous namespace
} // namespace scnn
