/**
 * @file
 * Tests of the experiment harnesses and the paper's headline result
 * shapes: per-layer comparisons (Figs. 8/9/10), the density sweep
 * (Fig. 7) and the PE-granularity study (Section VI-C) on reduced
 * workloads, asserting the qualitative relations the paper reports.
 */

#include <gtest/gtest.h>

#include "driver/experiments.hh"
#include "nn/model_zoo.hh"

namespace scnn {
namespace {

/** AlexNet-scale comparison shared across several tests. */
const NetworkComparison &
alexCmp()
{
    static const NetworkComparison cmp = compareNetwork(alexNet());
    return cmp;
}

TEST(CompareNetwork, CoversAllEvalLayers)
{
    EXPECT_EQ(alexCmp().layers.size(), alexNet().numEvalLayers());
}

TEST(CompareNetwork, ScnnBeatsDcnnNetworkWide)
{
    // Fig. 8a: AlexNet network speedup ~2.37x; accept a broad band.
    const double speedup = alexCmp().networkSpeedupScnn();
    EXPECT_GT(speedup, 1.3);
    EXPECT_LT(speedup, 4.5);
}

TEST(CompareNetwork, OracleBoundsScnn)
{
    for (const auto &l : alexCmp().layers) {
        EXPECT_LE(l.oracleCycles, l.scnn.cycles) << l.layerName;
        EXPECT_GE(l.speedupOracle(), l.speedupScnn()) << l.layerName;
    }
}

TEST(CompareNetwork, EnergyOrderingOnSparseLayers)
{
    // On sparse mid-network layers SCNN and DCNN-opt must beat plain
    // DCNN (Fig. 10a shapes).
    const auto &layers = alexCmp().layers;
    for (size_t i = 2; i < layers.size(); ++i) {
        EXPECT_LT(layers[i].dcnnOpt.energyPj,
                  layers[i].dcnn.energyPj)
            << layers[i].layerName;
        EXPECT_LT(layers[i].scnn.energyPj, layers[i].dcnn.energyPj)
            << layers[i].layerName;
    }
}

TEST(CompareNetwork, DenseFirstLayerIsScnnWorstCase)
{
    // Fig. 10: 100%-dense-input first layers challenge SCNN; its
    // relative energy there must exceed its network-wide relative
    // energy.
    const auto &cmp = alexCmp();
    const double conv1Rel =
        cmp.layers[0].energyRelDcnn(cmp.layers[0].scnn);
    const double netRel =
        cmp.totalScnnEnergy() / cmp.totalDcnnEnergy();
    EXPECT_GT(conv1Rel, netRel);
}

TEST(DensitySweep, ScnnScalesDcnnFlat)
{
    const Network tiny = tinyTestNetwork();
    const std::vector<DensityPoint> pts =
        densitySweep(tiny, {0.2, 0.5, 1.0});
    ASSERT_EQ(pts.size(), 3u);
    // DCNN latency does not depend on density.
    EXPECT_NEAR(pts[0].dcnnCycles, pts[2].dcnnCycles,
                pts[2].dcnnCycles * 0.01);
    // SCNN latency grows with density.
    EXPECT_LT(pts[0].scnnCycles, pts[1].scnnCycles);
    EXPECT_LT(pts[1].scnnCycles, pts[2].scnnCycles);
    // At 0.2/0.2, SCNN wins on performance and energy.
    EXPECT_LT(pts[0].scnnCycles, pts[0].dcnnCycles);
    EXPECT_LT(pts[0].scnnEnergy, pts[0].dcnnEnergy);
    // DCNN-opt is never worse than DCNN on energy.
    for (const auto &p : pts)
        EXPECT_LE(p.dcnnOptEnergy, p.dcnnEnergy * 1.0001);
}

TEST(PeGranularity, FixedAccumMacroReproducesPaperDirection)
{
    // Section VI-C: under the fixed-accumulator-macro scaling, 64
    // small PEs beat 4 big PEs (paper: 11% speedup, 59% vs 35% math
    // utilization).  GoogLeNet-like mix of 3x3 and 1x1 layers.
    Network net("granularity");
    net.addLayer(makeConv("g1", 128, 256, 28, 3, 1, 0.40, 0.55));
    net.addLayer(makeConv("g2", 480, 192, 14, 1, 0, 0.45, 0.50));
    net.addLayer(makeConv("g3", 112, 288, 14, 3, 1, 0.35, 0.42));

    const auto points = peGranularitySweep(net, {{2, 2}, {8, 8}}, 5,
                                           /*fixedAccum=*/true);
    ASSERT_EQ(points.size(), 2u);
    const auto &small = points[0]; // 2x2
    const auto &large = points[1]; // 8x8
    EXPECT_GT(large.mathUtilization, small.mathUtilization);
    EXPECT_LE(large.cycles, small.cycles);
}

TEST(PeGranularity, BarrierIdleGrowsWithPeCount)
{
    // Both the paper and this model agree that barrier-idle time
    // grows with PE count (regardless of the buffer-scaling
    // assumption).
    Network net("granularity_idle");
    net.addLayer(makeConv("g1", 128, 256, 28, 3, 1, 0.40, 0.55));

    for (bool fixedAccum : {false, true}) {
        const auto points = peGranularitySweep(
            net, {{2, 2}, {8, 8}}, 5, fixedAccum);
        EXPECT_GT(points[1].peIdleFraction, points[0].peIdleFraction)
            << "fixedAccum=" << fixedAccum;
    }
}

TEST(Experiments, DeterministicWithSeed)
{
    const Network net = tinyTestNetwork();
    const NetworkComparison a = compareNetwork(net, 123);
    const NetworkComparison b = compareNetwork(net, 123);
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (size_t i = 0; i < a.layers.size(); ++i) {
        EXPECT_EQ(a.layers[i].scnn.cycles, b.layers[i].scnn.cycles);
        EXPECT_EQ(a.layers[i].dcnn.cycles, b.layers[i].dcnn.cycles);
    }
}

} // anonymous namespace
} // namespace scnn
