/**
 * @file
 * Tests of the chained GoogLeNet inception-DAG executor: shape
 * plumbing through the stem, branches, concatenation and stage
 * pools; functional spot-checks against the reference; emergent
 * density reporting.
 */

#include <gtest/gtest.h>

#include "driver/googlenet_runner.hh"
#include "nn/model_zoo.hh"
#include "tensor/tensor.hh"

namespace scnn {
namespace {

/** The chained run is expensive (~57 convs); share it. */
const NetworkResult &
chainedRun()
{
    static const NetworkResult nr = [] {
        ScnnSimulator sim(scnnConfig());
        return runGoogLeNetChained(sim, 77);
    }();
    return nr;
}

TEST(GoogLeNetChain, RunsAllFiftySevenConvs)
{
    EXPECT_EQ(chainedRun().layers.size(), googLeNet().numLayers());
}

TEST(GoogLeNetChain, LayerOrderMatchesTopology)
{
    const auto &layers = chainedRun().layers;
    EXPECT_EQ(layers[0].layerName, "conv1/7x7_s2");
    EXPECT_EQ(layers[3].layerName, "IC_3a/1x1");
    EXPECT_EQ(layers.back().layerName, "IC_5b/pool_proj");
}

TEST(GoogLeNetChain, BranchOutputShapes)
{
    // IC_3a branches produce 64/128/32/32 channels of 28x28.
    for (const auto &l : chainedRun().layers) {
        if (l.layerName == "IC_3a/1x1") {
            EXPECT_EQ(l.output.channels(), 64);
            EXPECT_EQ(l.output.width(), 28);
        }
        if (l.layerName == "IC_5b/3x3") {
            EXPECT_EQ(l.output.channels(), 384);
            EXPECT_EQ(l.output.width(), 7);
        }
    }
}

TEST(GoogLeNetChain, EmergentDensitiesReasonable)
{
    for (const auto &l : chainedRun().layers) {
        const double d = l.stats.getOr("output_density", -1.0);
        EXPECT_GT(d, 0.05) << l.layerName;
        EXPECT_LT(d, 0.95) << l.layerName;
    }
}

TEST(GoogLeNetChain, PositiveWorkEverywhere)
{
    for (const auto &l : chainedRun().layers) {
        EXPECT_GT(l.cycles, 0u) << l.layerName;
        EXPECT_GT(l.products, 0u) << l.layerName;
        EXPECT_GT(l.energyPj, 0.0) << l.layerName;
    }
}

TEST(ConcatChannels, StacksAndValidates)
{
    Tensor3 a(2, 3, 3, 1.0f);
    Tensor3 b(1, 3, 3, 2.0f);
    const Tensor3 cat = concatChannels({a, b});
    EXPECT_EQ(cat.channels(), 3);
    EXPECT_FLOAT_EQ(cat.get(0, 0, 0), 1.0f);
    EXPECT_FLOAT_EQ(cat.get(2, 2, 2), 2.0f);

    Tensor3 bad(1, 4, 3);
    EXPECT_EXIT(concatChannels({a, bad}),
                ::testing::ExitedWithCode(1), "plane mismatch");
}

} // anonymous namespace
} // namespace scnn
