/**
 * @file
 * Tests of chained GoogLeNet through the generic DAG executor: shape
 * plumbing through the stem, branches, concatenation and stage pools;
 * emergent density reporting; and byte-exact parity with the digest
 * fixture pinned from the retired architecture-specific runner
 * (tests/golden/googlenet_chained_digest.json), which proves the
 * executor reproduces runGoogLeNetChained bit-for-bit.
 *
 * Regenerating after an *intentional* semantic change:
 *
 *   SCNN_UPDATE_GOLDEN=1 ./build/integration_test_googlenet_chain
 *
 * then review the fixture diff like any other code change.
 */

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "driver/dag_runner.hh"
#include "nn/model_zoo.hh"
#include "tensor/tensor.hh"

namespace scnn {
namespace {

#ifndef SCNN_SOURCE_TESTS_DIR
#error "SCNN_SOURCE_TESTS_DIR must point at the source tests/ dir"
#endif

const char *kDigestPath =
    SCNN_SOURCE_TESTS_DIR "/golden/googlenet_chained_digest.json";

/** The chained run is expensive (~57 convs); share it. */
const NetworkResult &
chainedRun()
{
    static const NetworkResult nr = [] {
        ScnnSimulator sim(scnnConfig());
        DagRunOptions opts;
        opts.seed = 77;
        opts.threads = 1; // the digest fixture's pinned thread count
        return runNetworkDag(sim, googLeNet(), opts);
    }();
    return nr;
}

uint64_t
fnv1aTensor(const Tensor3 &t)
{
    uint64_t h = 1469598103934665603ull;
    const float *p = t.data();
    for (size_t i = 0; i < t.size(); ++i) {
        uint32_t bits;
        std::memcpy(&bits, &p[i], sizeof(bits));
        for (int b = 0; b < 4; ++b) {
            h ^= (bits >> (8 * b)) & 0xffu;
            h *= 1099511628211ull;
        }
    }
    return h;
}

/**
 * The pinned digest format: every timing/work/energy/DRAM field plus
 * an FNV-1a hash of each functional output's float bit patterns.  The
 * stats map and archName are deliberately excluded so the executor
 * may add stats (it adds chained_input_density) without perturbing
 * parity with the retired runner.
 */
std::string
digestNetworkResult(const NetworkResult &nr)
{
    std::string out = "{\n  \"network\": \"" + nr.networkName +
                      "\",\n  \"layers\": [\n";
    char buf[1024];
    for (size_t i = 0; i < nr.layers.size(); ++i) {
        const LayerResult &l = nr.layers[i];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"name\": \"%s\", \"cycles\": %" PRIu64
            ", \"compute_cycles\": %" PRIu64
            ", \"drain_exposed_cycles\": %" PRIu64
            ", \"mul_array_ops\": %" PRIu64 ", \"products\": %" PRIu64
            ", \"landed_products\": %" PRIu64
            ", \"dense_macs\": %" PRIu64 ", \"mult_util_busy\": %.17g"
            ", \"mult_util_overall\": %.17g"
            ", \"pe_idle_fraction\": %.17g, \"energy_pj\": %.17g"
            ", \"dram_weight_bits\": %" PRIu64
            ", \"dram_act_bits\": %" PRIu64
            ", \"dram_tiled\": %d, \"num_dram_tiles\": %d"
            ", \"out_c\": %d, \"out_w\": %d, \"out_h\": %d"
            ", \"output_fnv\": \"%016" PRIx64 "\"}%s\n",
            l.layerName.c_str(), l.cycles, l.computeCycles,
            l.drainExposedCycles, l.mulArrayOps, l.products,
            l.landedProducts, l.denseMacs, l.multUtilBusy,
            l.multUtilOverall, l.peIdleFraction, l.energyPj,
            l.dramWeightBits, l.dramActBits, l.dramTiled ? 1 : 0,
            l.numDramTiles, l.output.channels(), l.output.width(),
            l.output.height(), fnv1aTensor(l.output),
            i + 1 < nr.layers.size() ? "," : "");
        out += buf;
    }
    out += "  ]\n}\n";
    return out;
}

bool
updateRequested()
{
    const char *env = std::getenv("SCNN_UPDATE_GOLDEN");
    return env != nullptr && *env != '\0' && std::string(env) != "0";
}

TEST(GoogLeNetChain, RunsAllFiftySevenConvs)
{
    EXPECT_EQ(chainedRun().layers.size(), googLeNet().numLayers());
}

TEST(GoogLeNetChain, LayerOrderMatchesTopology)
{
    const auto &layers = chainedRun().layers;
    EXPECT_EQ(layers[0].layerName, "conv1/7x7_s2");
    EXPECT_EQ(layers[3].layerName, "IC_3a/1x1");
    EXPECT_EQ(layers.back().layerName, "IC_5b/pool_proj");
}

TEST(GoogLeNetChain, BranchOutputShapes)
{
    // IC_3a branches produce 64/128/32/32 channels of 28x28.
    for (const auto &l : chainedRun().layers) {
        if (l.layerName == "IC_3a/1x1") {
            EXPECT_EQ(l.output.channels(), 64);
            EXPECT_EQ(l.output.width(), 28);
        }
        if (l.layerName == "IC_5b/3x3") {
            EXPECT_EQ(l.output.channels(), 384);
            EXPECT_EQ(l.output.width(), 7);
        }
    }
}

TEST(GoogLeNetChain, EmergentDensitiesReasonable)
{
    for (const auto &l : chainedRun().layers) {
        const double d = l.stats.getOr("output_density", -1.0);
        EXPECT_GT(d, 0.05) << l.layerName;
        EXPECT_LT(d, 0.95) << l.layerName;
    }
}

TEST(GoogLeNetChain, PositiveWorkEverywhere)
{
    for (const auto &l : chainedRun().layers) {
        EXPECT_GT(l.cycles, 0u) << l.layerName;
        EXPECT_GT(l.products, 0u) << l.layerName;
        EXPECT_GT(l.energyPj, 0.0) << l.layerName;
    }
}

/**
 * The tentpole acceptance check: the generic executor's chained
 * GoogLeNet run is byte-identical to the digest pinned from the
 * retired runGoogLeNetChained before its removal.
 */
TEST(GoogLeNetChain, MatchesRetiredRunnerDigest)
{
    const std::string live = digestNetworkResult(chainedRun());

    if (updateRequested()) {
        std::ofstream out(kDigestPath, std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << kDigestPath;
        out << live;
        GTEST_SKIP() << "regenerated " << kDigestPath;
    }

    std::ifstream in(kDigestPath);
    ASSERT_TRUE(in.good())
        << "missing fixture " << kDigestPath
        << " (regenerate with SCNN_UPDATE_GOLDEN=1)";
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(live, buf.str())
        << "chained GoogLeNet diverged from the retired runner's "
           "pinned digest";
}

TEST(ConcatChannels, StacksAndValidates)
{
    Tensor3 a(2, 3, 3, 1.0f);
    Tensor3 b(1, 3, 3, 2.0f);
    const Tensor3 cat = concatChannels({a, b});
    EXPECT_EQ(cat.channels(), 3);
    EXPECT_FLOAT_EQ(cat.get(0, 0, 0), 1.0f);
    EXPECT_FLOAT_EQ(cat.get(2, 2, 2), 2.0f);

    Tensor3 bad(1, 4, 3);
    EXPECT_EXIT(concatChannels({a, bad}),
                ::testing::ExitedWithCode(1), "plane mismatch");
}

} // anonymous namespace
} // namespace scnn
