/**
 * @file
 * Tests of the extension features: the input-halo dataflow variant,
 * chained whole-network execution with emergent sparsity, pooling
 * metadata, and the fixed-accumulator PE-grid scaling.
 */

#include <gtest/gtest.h>

#include "nn/model_zoo.hh"
#include "nn/reference.hh"
#include "nn/workload.hh"
#include "scnn/simulator.hh"

namespace scnn {
namespace {

TEST(InputHalos, FunctionalEquivalence)
{
    // The input-halo variant must compute the same outputs as the
    // reference convolution (no double accumulation from the
    // replicated inputs).
    AcceleratorConfig cfg = scnnConfig();
    cfg.pe.inputHalos = true;
    ScnnSimulator sim(cfg);

    for (const auto &layer :
         {makeConv("ih1", 8, 16, 20, 3, 1, 0.5, 0.5),
          makeConv("ih2", 16, 8, 9, 5, 2, 0.4, 0.6),
          makeConv("ih3", 4, 4, 30, 1, 0, 0.7, 0.7)}) {
        const LayerWorkload w = makeWorkload(layer, 21);
        const Tensor3 expect = referenceConv(layer, w.input,
                                             w.weights);
        const LayerResult r = sim.runLayer(w);
        EXPECT_LT(maxAbsDiff(r.output, expect), 1e-3) << layer.name;
    }
}

TEST(InputHalos, StridedEquivalence)
{
    AcceleratorConfig cfg = scnnConfig();
    cfg.pe.inputHalos = true;
    ScnnSimulator sim(cfg);

    ConvLayerParams p = makeConv("ih_stride", 3, 8, 27, 7, 0, 0.8,
                                 1.0);
    p.strideX = p.strideY = 4;
    p.validate();
    const LayerWorkload w = makeWorkload(p, 22);
    const Tensor3 expect = referenceConv(p, w.input, w.weights);
    EXPECT_LT(maxAbsDiff(sim.runLayer(w).output, expect), 1e-3);
}

TEST(InputHalos, NoNeighbourExchange)
{
    AcceleratorConfig cfg = scnnConfig();
    cfg.pe.inputHalos = true;
    ScnnSimulator inHalo(cfg);
    ScnnSimulator outHalo(scnnConfig());

    const ConvLayerParams p =
        makeConv("ih_halo", 16, 16, 24, 3, 1, 0.5, 0.5);
    const LayerWorkload w = makeWorkload(p, 23);
    const LayerResult a = inHalo.runLayer(w);
    const LayerResult b = outHalo.runLayer(w);

    EXPECT_DOUBLE_EQ(a.events.haloBits, 0.0);
    EXPECT_GT(b.events.haloBits, 0.0);
    // Replicated inputs: the input-halo variant computes at least as
    // many products (redundant edge work).
    EXPECT_GE(a.products, b.products);
    // But accumulates exactly the same useful ones.
    EXPECT_EQ(a.landedProducts, b.landedProducts);
}

TEST(InputHalos, ReplicationGrowsIaramFootprint)
{
    AcceleratorConfig cfg = scnnConfig();
    cfg.pe.inputHalos = true;
    ScnnSimulator inHalo(cfg);
    ScnnSimulator outHalo(scnnConfig());

    const ConvLayerParams p =
        makeConv("ih_cap", 16, 16, 24, 3, 1, 0.5, 0.5);
    const LayerWorkload w = makeWorkload(p, 24);
    EXPECT_GT(inHalo.runLayer(w).stats.get("in_stored_elements"),
              outHalo.runLayer(w).stats.get("in_stored_elements"));
}

TEST(Chained, MatchesReferenceChain)
{
    const Network net = tinyTestNetwork();
    ScnnSimulator sim(scnnConfig());
    const NetworkResult nr = sim.runNetworkChained(net, 31);
    ASSERT_EQ(nr.layers.size(), net.numLayers());

    // Rebuild the reference chain with the same deterministic
    // weights and input.
    Rng actRng(net.layer(0).name + "/activations", 31);
    Tensor3 act = makeActivations(net.layer(0), actRng);
    for (size_t i = 0; i < net.numLayers(); ++i) {
        const ConvLayerParams &layer = net.layer(i);
        Rng wtRng(layer.name + "/weights", 31);
        const Tensor4 weights = makeWeights(layer, wtRng);
        act = referenceConv(layer, act, weights);
        ASSERT_LT(maxAbsDiff(nr.layers[i].output, act), 1e-2)
            << layer.name;
        if (layer.poolWindow > 0)
            act = maxPool(act, layer.poolWindow, layer.poolStride,
                          layer.poolPad);
    }
}

TEST(Chained, EmergentDensitiesReported)
{
    ScnnSimulator sim(scnnConfig());
    const NetworkResult nr =
        sim.runNetworkChained(tinyTestNetwork(), 32);
    for (const auto &l : nr.layers) {
        const double dOut = l.stats.get("output_density");
        EXPECT_GT(dOut, 0.0) << l.layerName;
        EXPECT_LT(dOut, 1.0) << l.layerName;
        EXPECT_TRUE(l.stats.has("chained_input_density"));
    }
}

TEST(Chained, AlexNetShapesChainThroughPools)
{
    // conv1 (55x55) -pool3/2-> 27x27 conv2 -pool3/2-> 13x13 conv3..5:
    // the model-zoo pooling metadata must make the chain line up.
    const Network net = alexNet();
    int wh = 227;
    for (const auto &l : net.layers()) {
        ASSERT_EQ(l.inWidth, wh) << l.name;
        wh = (wh + 2 * l.padX - l.filterW) / l.strideX + 1;
        if (l.poolWindow > 0)
            wh = (wh + 2 * l.poolPad - l.poolWindow) / l.poolStride +
                 1;
    }
    EXPECT_EQ(wh, 6); // AlexNet's 6x6x256 going into fc6
}

TEST(Chained, RejectsNonSequentialTopology)
{
    // GoogLeNet's inception branches do not chain.
    ScnnSimulator sim(scnnConfig());
    EXPECT_EXIT(sim.runNetworkChained(googLeNet(), 1),
                ::testing::ExitedWithCode(1), "sequential topology");
}

TEST(FixedAccumGrid, PinsAccumulatorCapacity)
{
    const AcceleratorConfig cfg = scnnWithPeGridFixedAccum(2, 2);
    EXPECT_EQ(cfg.pe.accumBanks * cfg.pe.accumEntriesPerBank,
              32 * 32);
    EXPECT_EQ(cfg.pe.kcCap, 32);
    // Proportional scaling grows capacity instead.
    const AcceleratorConfig prop = scnnWithPeGrid(2, 2);
    EXPECT_GT(prop.pe.accumBanks * prop.pe.accumEntriesPerBank,
              32 * 32);
}

TEST(FixedAccumGrid, FunctionalEquivalence)
{
    const ConvLayerParams p =
        makeConv("fa", 8, 16, 19, 3, 1, 0.5, 0.5);
    const LayerWorkload w = makeWorkload(p, 5);
    const Tensor3 expect = referenceConv(p, w.input, w.weights);
    ScnnSimulator sim(scnnWithPeGridFixedAccum(4, 4));
    EXPECT_LT(maxAbsDiff(sim.runLayer(w).output, expect), 1e-3);
}

TEST(Pooling, VggStagePoolsDeclared)
{
    int pools = 0;
    for (const auto &l : vgg16().layers())
        pools += (l.poolWindow > 0);
    EXPECT_EQ(pools, 5);
}

} // anonymous namespace
} // namespace scnn
