/**
 * @file
 * Adversarial-I/O suite for the front end's lowest layer: FdLineReader
 * under hostile byte streams (1-byte trickles, partial lines at the
 * size limit, EOF mid-line, stop-fd wakeups, expired read deadlines)
 * and writeAllFd() against vanished peers.  These are the primitives
 * every transport of the fleet stands on; their edge behaviour is
 * pinned here so a refactor cannot quietly change it.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "sim/frontend.hh"

namespace scnn {
namespace {

using Clock = std::chrono::steady_clock;

/** A pipe that closes whatever ends are still open on destruction. */
struct Pipe
{
    int fds[2] = {-1, -1};

    Pipe() { EXPECT_EQ(pipe(fds), 0); }

    ~Pipe()
    {
        closeRead();
        closeWrite();
    }

    int readEnd() const { return fds[0]; }
    int writeEnd() const { return fds[1]; }

    void
    closeRead()
    {
        if (fds[0] >= 0)
            close(fds[0]);
        fds[0] = -1;
    }

    void
    closeWrite()
    {
        if (fds[1] >= 0)
            close(fds[1]);
        fds[1] = -1;
    }

    void
    writeAll(const std::string &data)
    {
        size_t off = 0;
        while (off < data.size()) {
            const ssize_t n = write(fds[1], data.data() + off,
                                    data.size() - off);
            ASSERT_GT(n, 0);
            off += static_cast<size_t>(n);
        }
    }
};

TEST(FdLineReader, OneByteWritesStillProduceWholeLines)
{
    Pipe p;
    std::thread writer([&] {
        const std::string data = "hello line\nsecond\n";
        for (char c : data) {
            ASSERT_EQ(write(p.writeEnd(), &c, 1), 1);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        p.closeWrite();
    });
    FdLineReader reader(p.readEnd(), -1, FdLineReader::Options());
    std::string line;
    bool oversized = false;
    EXPECT_EQ(reader.next(line, oversized), FdLineReader::Result::Line);
    EXPECT_EQ(line, "hello line");
    EXPECT_FALSE(oversized);
    EXPECT_EQ(reader.next(line, oversized), FdLineReader::Result::Line);
    EXPECT_EQ(line, "second");
    EXPECT_EQ(reader.next(line, oversized), FdLineReader::Result::Eof);
    writer.join();
}

TEST(FdLineReader, OversizedLineIsCappedAndFlaggedNotFatal)
{
    Pipe p;
    p.writeAll(std::string(40, 'x') + "\nnext\n");
    p.closeWrite();
    FdLineReader::Options opts;
    opts.maxLineBytes = 8;
    FdLineReader reader(p.readEnd(), -1, opts);
    std::string line;
    bool oversized = false;
    EXPECT_EQ(reader.next(line, oversized), FdLineReader::Result::Line);
    EXPECT_TRUE(oversized);
    EXPECT_EQ(line, "xxxxxxxx"); // first maxLineBytes, rest discarded
    // The stream recovers: the next line is intact.
    EXPECT_EQ(reader.next(line, oversized), FdLineReader::Result::Line);
    EXPECT_EQ(line, "next");
    EXPECT_FALSE(oversized);
}

TEST(FdLineReader, PartialLineExactlyAtTheLimitIsNotOversized)
{
    Pipe p;
    p.writeAll(std::string(8, 'y') + "\n");
    p.closeWrite();
    FdLineReader::Options opts;
    opts.maxLineBytes = 8;
    FdLineReader reader(p.readEnd(), -1, opts);
    std::string line;
    bool oversized = false;
    EXPECT_EQ(reader.next(line, oversized), FdLineReader::Result::Line);
    EXPECT_EQ(line, std::string(8, 'y'));
    EXPECT_FALSE(oversized);
}

TEST(FdLineReader, EofMidLineYieldsTheTrailingData)
{
    Pipe p;
    p.writeAll("complete\nunterminated");
    p.closeWrite();
    FdLineReader reader(p.readEnd(), -1, FdLineReader::Options());
    std::string line;
    bool oversized = false;
    EXPECT_EQ(reader.next(line, oversized), FdLineReader::Result::Line);
    EXPECT_EQ(line, "complete");
    // A pipe that ends without '\n' still carried a request.
    EXPECT_EQ(reader.next(line, oversized), FdLineReader::Result::Line);
    EXPECT_EQ(line, "unterminated");
    EXPECT_EQ(reader.next(line, oversized), FdLineReader::Result::Eof);
}

TEST(FdLineReader, StopFdWakesABlockedReader)
{
    Pipe data, stop;
    FdLineReader reader(data.readEnd(), stop.readEnd(),
                        FdLineReader::Options());
    std::thread stopper([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        ASSERT_EQ(write(stop.writeEnd(), "!", 1), 1);
    });
    std::string line;
    bool oversized = false;
    EXPECT_EQ(reader.next(line, oversized),
              FdLineReader::Result::Stopped);
    stopper.join();
}

TEST(FdLineReader, BufferedLinesDrainBeforeAStopFires)
{
    Pipe data, stop;
    data.writeAll("a\nb");
    ASSERT_EQ(write(stop.writeEnd(), "!", 1), 1);
    // Give both fds readable data before the first next().
    FdLineReader reader(data.readEnd(), stop.readEnd(),
                        FdLineReader::Options());
    std::string line;
    bool oversized = false;
    // A complete buffered line is still delivered...
    const FdLineReader::Result first = reader.next(line, oversized);
    if (first == FdLineReader::Result::Line) {
        EXPECT_EQ(line, "a");
        // ...but once the buffer needs refilling, the stop wins and
        // the partial "b" is dropped (forced drain consumes nothing
        // further).
        EXPECT_EQ(reader.next(line, oversized),
                  FdLineReader::Result::Stopped);
    } else {
        // The reader may also legitimately see the stop first: both
        // fds were readable when it polled.
        EXPECT_EQ(first, FdLineReader::Result::Stopped);
    }
}

TEST(FdLineReader, IdleDeadlineCutsASilentPeer)
{
    Pipe p;
    FdLineReader::Options opts;
    opts.idleTimeoutMs = 60.0;
    FdLineReader reader(p.readEnd(), -1, opts);
    std::string line;
    bool oversized = false;
    const auto start = Clock::now();
    EXPECT_EQ(reader.next(line, oversized),
              FdLineReader::Result::TimedOut);
    const double elapsedMs =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    EXPECT_GE(elapsedMs, 50.0);
    EXPECT_LT(elapsedMs, 5000.0); // cut off, not hung
}

TEST(FdLineReader, LineDeadlineCutsASlowLoris)
{
    Pipe p;
    FdLineReader::Options opts;
    opts.lineTimeoutMs = 80.0;
    FdLineReader reader(p.readEnd(), -1, opts);
    // One byte starts the line; the newline never comes.
    ASSERT_EQ(write(p.writeEnd(), "x", 1), 1);
    std::string line;
    bool oversized = false;
    EXPECT_EQ(reader.next(line, oversized),
              FdLineReader::Result::TimedOut);
}

TEST(FdLineReader, IdleDeadlineDoesNotFireWhileLinesFlow)
{
    Pipe p;
    FdLineReader::Options opts;
    opts.idleTimeoutMs = 150.0;
    FdLineReader reader(p.readEnd(), -1, opts);
    std::thread writer([&] {
        for (int i = 0; i < 4; ++i) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(40));
            const std::string line = "line\n";
            ASSERT_EQ(write(p.writeEnd(), line.data(), line.size()),
                      static_cast<ssize_t>(line.size()));
        }
        p.closeWrite();
    });
    std::string line;
    bool oversized = false;
    int lines = 0;
    for (;;) {
        const FdLineReader::Result r = reader.next(line, oversized);
        if (r != FdLineReader::Result::Line)
            break;
        ++lines;
    }
    EXPECT_EQ(lines, 4); // every line beat the (per-line) idle clock
    writer.join();
}

TEST(WriteAllFd, ReportsAVanishedSocketPeerInsteadOfRaisingSigpipe)
{
    // Deliberately NOT ignoring SIGPIPE here: MSG_NOSIGNAL alone must
    // protect socket writes, or this whole test binary dies.
    int sv[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    close(sv[1]); // the peer vanishes
    const char data[] = "doomed\n";
    // The first send may be accepted into a buffer; the second must
    // surface the broken pipe.
    bool ok = writeAllFd(sv[0], data, sizeof(data) - 1);
    if (ok)
        ok = writeAllFd(sv[0], data, sizeof(data) - 1);
    EXPECT_FALSE(ok);
    close(sv[0]);
}

TEST(WriteAllFd, FallsBackToPlainWriteOnPipes)
{
    Pipe p;
    const std::string line = "through a pipe\n";
    EXPECT_TRUE(writeAllFd(p.writeEnd(), line.data(), line.size()));
    std::string got(line.size(), '\0');
    ASSERT_EQ(read(p.readEnd(), &got[0], got.size()),
              static_cast<ssize_t>(got.size()));
    EXPECT_EQ(got, line);
}

TEST(WriteAllFd, ClosedPipeReaderIsPeerGoneOnceSigpipeIsIgnored)
{
    // Pipes have no MSG_NOSIGNAL; this is exactly why every long-
    // lived tool calls ignoreSigpipe() at startup.
    ignoreSigpipe();
    Pipe p;
    p.closeRead();
    const char data[] = "doomed\n";
    EXPECT_FALSE(writeAllFd(p.writeEnd(), data, sizeof(data) - 1));
}

} // namespace
} // namespace scnn
