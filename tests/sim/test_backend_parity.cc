/**
 * @file
 * Backend-parity tests: the session's shared-workload results must be
 * bit-identical to the pre-redesign experiment harness, which built
 * the engine classes directly (one workload per layer, SCNN +
 * DCNN/DCNN-opt with functional off, oracle derived from the SCNN
 * run).  This pins the api_redesign: moving the stack onto the
 * Simulator/session layer changed no number anywhere, at any thread
 * count.
 */

#include <gtest/gtest.h>

#include "analytic/timeloop.hh"
#include "dcnn/simulator.hh"
#include "driver/experiments.hh"
#include "nn/model_zoo.hh"
#include "nn/workload.hh"
#include "scnn/oracle.hh"
#include "scnn/simulator.hh"
#include "sim/session.hh"

namespace scnn {
namespace {

constexpr uint64_t kSeed = 20170624;

/**
 * The pre-redesign compareNetwork loop, verbatim: direct engine
 * construction, per-layer shared workload, next-layer density hints.
 */
std::vector<LayerComparison>
legacyCompare(const Network &net, uint64_t seed)
{
    std::vector<ConvLayerParams> layers;
    for (const auto &l : net.layers())
        if (l.inEval)
            layers.push_back(l);

    std::vector<LayerComparison> out;
    for (size_t i = 0; i < layers.size(); ++i) {
        const LayerWorkload w = makeWorkload(layers[i], seed);

        LayerComparison lc;
        lc.layerName = layers[i].name;

        RunOptions scnnOpts;
        scnnOpts.firstLayer = (i == 0);
        scnnOpts.outputDensityHint = (i + 1 < layers.size())
            ? layers[i + 1].inputDensity
            : 0.5;
        ScnnSimulator scnnSim(scnnConfig());
        lc.scnn = scnnSim.runLayer(w, scnnOpts);

        DcnnRunOptions denseOpts;
        denseOpts.firstLayer = (i == 0);
        denseOpts.functional = false;
        denseOpts.outputDensityHint = (i + 1 < layers.size())
            ? layers[i + 1].inputDensity
            : 0.5;
        DcnnSimulator dcnnSim(dcnnConfig());
        DcnnSimulator dcnnOptSim(dcnnOptConfig());
        lc.dcnn = dcnnSim.runLayer(w, denseOpts);
        lc.dcnnOpt = dcnnOptSim.runLayer(w, denseOpts);

        lc.oracleCycles = oracleCycles(lc.scnn, scnnConfig());
        out.push_back(std::move(lc));
    }
    return out;
}

void
expectLayerBitIdentical(const LayerResult &a, const LayerResult &b,
                        const std::string &context)
{
    EXPECT_EQ(a.layerName, b.layerName) << context;
    EXPECT_EQ(a.cycles, b.cycles) << context;
    EXPECT_EQ(a.computeCycles, b.computeCycles) << context;
    EXPECT_EQ(a.drainExposedCycles, b.drainExposedCycles) << context;
    EXPECT_EQ(a.mulArrayOps, b.mulArrayOps) << context;
    EXPECT_EQ(a.products, b.products) << context;
    EXPECT_EQ(a.landedProducts, b.landedProducts) << context;
    EXPECT_EQ(a.denseMacs, b.denseMacs) << context;
    // Doubles compared exactly: parity means bit-identical.
    EXPECT_EQ(a.multUtilBusy, b.multUtilBusy) << context;
    EXPECT_EQ(a.multUtilOverall, b.multUtilOverall) << context;
    EXPECT_EQ(a.peIdleFraction, b.peIdleFraction) << context;
    EXPECT_EQ(a.energyPj, b.energyPj) << context;
    EXPECT_EQ(a.dramWeightBits, b.dramWeightBits) << context;
    EXPECT_EQ(a.dramActBits, b.dramActBits) << context;
    EXPECT_EQ(a.dramTiled, b.dramTiled) << context;
}

TEST(BackendParity, SessionMatchesLegacyCompareAt128Threads)
{
    const Network net = tinyTestNetwork();
    const std::vector<LayerComparison> legacy =
        legacyCompare(net, kSeed);

    for (int threads : {1, 2, 8}) {
        const NetworkComparison cmp =
            compareNetwork(net, kSeed, threads);
        ASSERT_EQ(cmp.layers.size(), legacy.size())
            << "threads=" << threads;
        for (size_t i = 0; i < legacy.size(); ++i) {
            const std::string ctx = "threads=" +
                std::to_string(threads) + " layer=" +
                legacy[i].layerName;
            expectLayerBitIdentical(cmp.layers[i].scnn,
                                    legacy[i].scnn, ctx + " scnn");
            expectLayerBitIdentical(cmp.layers[i].dcnn,
                                    legacy[i].dcnn, ctx + " dcnn");
            expectLayerBitIdentical(cmp.layers[i].dcnnOpt,
                                    legacy[i].dcnnOpt,
                                    ctx + " dcnn-opt");
            EXPECT_EQ(cmp.layers[i].oracleCycles,
                      legacy[i].oracleCycles)
                << ctx << " oracle";
        }
    }
}

TEST(BackendParity, SessionNetworkRunMatchesEngineRunNetwork)
{
    // peGranularitySweep moved from ScnnSimulator::runNetwork onto
    // the session; both paths must agree bit-for-bit.
    const Network net = tinyTestNetwork();
    const AcceleratorConfig cfg = scnnWithPeGrid(4, 4);

    ScnnSimulator engine(cfg);
    const NetworkResult direct = engine.runNetwork(net, 5);

    SimulationRequest req;
    req.network = net;
    req.seed = 5;
    req.backends = {{"scnn", "scnn", cfg}};
    const NetworkResult viaSession =
        runSession(req).get("scnn").result;

    ASSERT_EQ(direct.layers.size(), viaSession.layers.size());
    for (size_t i = 0; i < direct.layers.size(); ++i)
        expectLayerBitIdentical(direct.layers[i],
                                viaSession.layers[i],
                                direct.layers[i].layerName);
}

TEST(BackendParity, SessionDensityPointMatchesEngineEstimate)
{
    // densitySweep moved from TimeLoopModel::estimateNetwork onto the
    // session; spot-check one density point per architecture.
    const Network swept =
        withUniformDensity(tinyTestNetwork(), 0.4, 0.4);
    const TimeLoopModel model;

    SimulationRequest req;
    req.network = swept;
    req.backends = {{"timeloop", "scnn", scnnConfig()},
                    {"timeloop", "dcnn", dcnnConfig()},
                    {"timeloop", "dcnn-opt", dcnnOptConfig()}};
    const SimulationResponse resp = runSession(req);

    for (const auto &[label, cfg] :
         {std::pair<std::string, AcceleratorConfig>{"scnn",
                                                    scnnConfig()},
          {"dcnn", dcnnConfig()},
          {"dcnn-opt", dcnnOptConfig()}}) {
        const NetworkResult direct = model.estimateNetwork(cfg, swept);
        const NetworkResult &via = resp.get(label).result;
        ASSERT_EQ(direct.layers.size(), via.layers.size()) << label;
        EXPECT_EQ(direct.totalCycles(), via.totalCycles()) << label;
        EXPECT_EQ(direct.totalEnergyPj(), via.totalEnergyPj())
            << label;
    }
}

TEST(BackendParity, CompareNetworkDeterministicAcrossThreadCounts)
{
    const Network net = tinyTestNetwork();
    const NetworkComparison one = compareNetwork(net, 99, 1);
    const NetworkComparison eight = compareNetwork(net, 99, 8);
    ASSERT_EQ(one.layers.size(), eight.layers.size());
    for (size_t i = 0; i < one.layers.size(); ++i) {
        expectLayerBitIdentical(one.layers[i].scnn,
                                eight.layers[i].scnn, "scnn");
        EXPECT_EQ(one.layers[i].oracleCycles,
                  eight.layers[i].oracleCycles);
    }
}

} // anonymous namespace
} // namespace scnn
