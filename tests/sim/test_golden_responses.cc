/**
 * @file
 * Golden-response regression suite: the serialized SimulationResponse
 * for the tiny network on every registered backend is byte-compared
 * against a committed fixture (tests/golden/tiny_<backend>.json).
 * Any semantic drift in the simulators, the session layer or the JSON
 * serialization fails loudly with a diff pointer instead of slipping
 * into downstream consumers.
 *
 * Requests are fully pinned (seed, threads = 1, profile off), and the
 * stack guarantees bit-identical results across thread counts, SIMD
 * modes and compilers, so the comparison is exact.  Wall-time stats
 * (profile_*_ms) would be volatile; they are masked defensively even
 * though pinned requests never carry them.
 *
 * Regenerating after an *intentional* semantic change:
 *
 *   SCNN_UPDATE_GOLDEN=1 ./build/sim_test_golden_responses
 *
 * then review the fixture diff like any other code change.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "nn/model_zoo.hh"
#include "sim/registry.hh"
#include "sim/session.hh"

namespace scnn {
namespace {

#ifndef SCNN_SOURCE_TESTS_DIR
#error "SCNN_SOURCE_TESTS_DIR must point at the source tests/ dir"
#endif

std::string
fixturePath(const std::string &backend)
{
    return std::string(SCNN_SOURCE_TESTS_DIR) + "/golden/tiny_" +
           backend + ".json";
}

bool
updateRequested()
{
    const char *env = std::getenv("SCNN_UPDATE_GOLDEN");
    return env != nullptr && *env != '\0' &&
           std::string(env) != "0";
}

/**
 * Mask wall-clock stats: any "profile_*_ms" value is replaced by 0 so
 * a fixture recorded with profiling off stays comparable even if a
 * future request variant records timings.
 */
std::string
maskVolatile(const std::string &json)
{
    std::string out = json;
    size_t pos = 0;
    while ((pos = out.find("\"profile_", pos)) != std::string::npos) {
        const size_t colon = out.find(':', pos);
        if (colon == std::string::npos)
            break;
        size_t end = colon + 1;
        while (end < out.size() && out[end] != ',' &&
               out[end] != '}')
            ++end;
        out.replace(colon + 1, end - (colon + 1), " 0");
        pos = colon;
    }
    return out;
}

std::string
liveResponse(const std::string &backend)
{
    SimulationRequest req;
    req.network = tinyTestNetwork();
    req.threads = 1; // resolved count is echoed in the JSON
    BackendSpec spec;
    spec.backend = backend;
    req.backends.push_back(std::move(spec));
    const SimulationResponse resp = runSession(req);
    const BackendRun &run = resp.runs.front();
    EXPECT_TRUE(run.ok) << run.error;
    return toJson(resp);
}

class GoldenResponse : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GoldenResponse, MatchesCommittedFixture)
{
    const std::string backend = GetParam();
    const std::string path = fixturePath(backend);
    const std::string live = maskVolatile(liveResponse(backend));

    if (updateRequested()) {
        std::ofstream out(path, std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << live << "\n";
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing fixture " << path
        << " (regenerate with SCNN_UPDATE_GOLDEN=1)";
    std::stringstream buf;
    buf << in.rdbuf();
    std::string golden = buf.str();
    // writeJsonFile-style fixtures end in one newline.
    if (!golden.empty() && golden.back() == '\n')
        golden.pop_back();

    EXPECT_EQ(maskVolatile(golden), live)
        << "live response for backend '" << backend
        << "' diverged from " << path
        << "\nIf the semantic change is intentional, regenerate via"
        << "\n  SCNN_UPDATE_GOLDEN=1 and review the fixture diff.";
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, GoldenResponse,
    ::testing::ValuesIn(registeredBackends()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

/** The fixture set tracks the registry: exactly the five built-ins
 *  (extensions would register under new names and need fixtures). */
TEST(GoldenResponse, CoversAllFiveBuiltinBackends)
{
    const std::vector<std::string> names = registeredBackends();
    ASSERT_GE(names.size(), 5u);
    for (const char *expected :
         {"scnn", "dcnn", "dcnn-opt", "oracle", "timeloop"})
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
}

} // namespace
} // namespace scnn
