/**
 * @file
 * Chaos suite: drives the real scnn_serve binary through the real
 * scnn_faultproxy binary (both injected by CMake) and pins the
 * client-visible shape of every injected fault:
 *
 *  - a pass-through proxy is byte-transparent (replies identical to a
 *    direct connection, pings included);
 *  - delay faults slow a reply without corrupting it;
 *  - truncate/reset faults end the client's stream mid-reply while
 *    the server stays healthy (EPIPE hardening: a vanished client
 *    must never take the fleet down);
 *  - blackhole faults starve the client (bounded only by the
 *    client's own read timeout);
 *  - the fault sequence is a pure function of --seed: same seed,
 *    same faults, connection for connection.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <netinet/in.h>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/json.hh"

namespace scnn {
namespace {

using Clock = std::chrono::steady_clock;

std::string
uniquePath(const char *stem)
{
    static std::atomic<int> counter{0};
    return testing::TempDir() + stem + "_" +
           std::to_string(getpid()) + "_" +
           std::to_string(counter.fetch_add(1));
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

pid_t
spawn(const std::vector<std::string> &args,
      const std::string &stderrPath)
{
    std::vector<char *> argv;
    for (const auto &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = fork();
    if (pid != 0)
        return pid;
    const int devnull = open("/dev/null", O_RDWR);
    dup2(devnull, STDIN_FILENO);
    dup2(devnull, STDOUT_FILENO);
    const int errFd = open(stderrPath.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (errFd >= 0)
        dup2(errFd, STDERR_FILENO);
    execv(argv[0], argv.data());
    _exit(127);
}

int
waitForExit(pid_t pid, double timeoutSec = 60.0)
{
    const auto deadline =
        Clock::now() + std::chrono::duration<double>(timeoutSec);
    int status = 0;
    for (;;) {
        const pid_t r = waitpid(pid, &status, WNOHANG);
        if (r == pid)
            break;
        if (Clock::now() > deadline) {
            kill(pid, SIGKILL);
            waitpid(pid, &status, 0);
            ADD_FAILURE() << "process did not exit in " << timeoutSec
                          << "s; killed";
            return -1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

/** A spawned process publishing its port via --port-file. */
struct Proc
{
    pid_t pid = -1;
    int port = 0;
    std::string errPath;

    int
    stop()
    {
        if (pid < 0)
            return -1;
        kill(pid, SIGTERM);
        const int status = waitForExit(pid);
        pid = -1;
        return status;
    }
};

Proc
start(const std::string &bin,
      const std::vector<std::string> &extraArgs, const char *stem)
{
    Proc p;
    p.errPath = uniquePath((std::string(stem) + "_err").c_str());
    const std::string portFile =
        uniquePath((std::string(stem) + "_port").c_str());
    std::vector<std::string> args = {bin, "--listen=127.0.0.1:0",
                                     "--port-file=" + portFile};
    args.insert(args.end(), extraArgs.begin(), extraArgs.end());
    p.pid = spawn(args, p.errPath);

    const auto deadline = Clock::now() + std::chrono::seconds(30);
    for (;;) {
        const std::string text = slurp(portFile);
        if (!text.empty()) {
            p.port = std::atoi(text.c_str());
            break;
        }
        int status = 0;
        if (waitpid(p.pid, &status, WNOHANG) == p.pid) {
            ADD_FAILURE() << stem << " exited during startup: "
                          << slurp(p.errPath);
            p.pid = -1;
            break;
        }
        if (Clock::now() > deadline) {
            ADD_FAILURE() << stem << " never wrote its port file";
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GT(p.port, 0);
    return p;
}

Proc
startServer()
{
    return start(SCNN_SERVE_BIN, {}, "serve");
}

Proc
startProxy(int upstreamPort,
           const std::vector<std::string> &faultArgs,
           uint64_t seed = 1)
{
    std::vector<std::string> args = {
        "--upstream=127.0.0.1:" + std::to_string(upstreamPort),
        "--seed=" + std::to_string(seed)};
    args.insert(args.end(), faultArgs.begin(), faultArgs.end());
    return start(SCNN_FAULTPROXY_BIN, args, "proxy");
}

/** One JSON-lines client with a configurable read timeout. */
class LineClient
{
  public:
    explicit LineClient(int port, int recvTimeoutSec = 60)
    {
        fd_ = socket(AF_INET, SOCK_STREAM, 0);
        struct timeval tv = {recvTimeoutSec, 0};
        setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        sockaddr_in addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(port));
        inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        for (int attempt = 0;; ++attempt) {
            if (connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)) == 0)
                return;
            if (attempt > 100) {
                close(fd_);
                fd_ = -1;
                return;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
    }

    ~LineClient()
    {
        if (fd_ >= 0)
            close(fd_);
    }

    bool connected() const { return fd_ >= 0; }

    bool
    sendLine(const std::string &line)
    {
        std::string data = line + "\n";
        size_t off = 0;
        while (off < data.size()) {
            const ssize_t w = send(fd_, data.data() + off,
                                   data.size() - off, MSG_NOSIGNAL);
            if (w < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            off += static_cast<size_t>(w);
        }
        return true;
    }

    bool
    recvLine(std::string &out)
    {
        out.clear();
        for (;;) {
            const size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                out = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return true;
            }
            char chunk[1 << 14];
            const ssize_t r = read(fd_, chunk, sizeof(chunk));
            if (r < 0 && errno == EINTR)
                continue;
            if (r <= 0)
                return false;
            buf_.append(chunk, static_cast<size_t>(r));
        }
    }

  private:
    int fd_ = -1;
    std::string buf_;
};

const char *kRequest =
    R"({"network": "tiny", "backends": ["scnn"], "seed": 7})";

/** The proxy's logged fault decisions, in connection order. */
std::vector<std::string>
faultLog(const Proc &proxy)
{
    std::vector<std::string> faults;
    std::istringstream in(slurp(proxy.errPath));
    std::string line;
    while (std::getline(in, line)) {
        const size_t at = line.find(": conn ");
        if (at == std::string::npos)
            continue;
        const size_t colon = line.rfind(": ");
        faults.push_back(line.substr(colon + 2));
    }
    return faults;
}

TEST(FaultProxy, PassThroughIsByteTransparent)
{
    Proc server = startServer();
    Proc proxy = startProxy(server.port, {});

    std::string direct, proxied, pong;
    {
        LineClient c(server.port);
        ASSERT_TRUE(c.connected());
        ASSERT_TRUE(c.sendLine(kRequest));
        ASSERT_TRUE(c.recvLine(direct));
    }
    {
        LineClient c(proxy.port);
        ASSERT_TRUE(c.connected());
        ASSERT_TRUE(c.sendLine("{\"ping\": 42}"));
        ASSERT_TRUE(c.recvLine(pong));
        ASSERT_TRUE(c.sendLine(kRequest));
        ASSERT_TRUE(c.recvLine(proxied));
    }
    EXPECT_EQ(direct, proxied);
    EXPECT_NE(pong.find("scnn.service_pong.v1"), std::string::npos);
    EXPECT_NE(pong.find("\"ping\":42"), std::string::npos);

    proxy.stop();
    EXPECT_EQ(server.stop(), 0);
}

TEST(FaultProxy, DelaySlowsTheReplyWithoutCorruptingIt)
{
    Proc server = startServer();
    Proc proxy = startProxy(server.port,
                            {"--p-pass=0", "--p-delay=1",
                             "--delay-ms=120"});

    std::string direct, delayed;
    {
        LineClient c(server.port);
        ASSERT_TRUE(c.sendLine(kRequest));
        ASSERT_TRUE(c.recvLine(direct));
    }
    const auto start = Clock::now();
    {
        LineClient c(proxy.port);
        ASSERT_TRUE(c.sendLine(kRequest));
        ASSERT_TRUE(c.recvLine(delayed));
    }
    const double elapsedMs =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    EXPECT_EQ(direct, delayed);
    EXPECT_GE(elapsedMs, 100.0);

    proxy.stop();
    EXPECT_EQ(server.stop(), 0);
}

TEST(FaultProxy, TruncateEndsTheStreamMidReplyAndTheServerSurvives)
{
    Proc server = startServer();
    Proc proxy = startProxy(server.port,
                            {"--p-pass=0", "--p-truncate=1",
                             "--fault-after=16"});
    {
        LineClient c(proxy.port);
        ASSERT_TRUE(c.connected());
        ASSERT_TRUE(c.sendLine(kRequest));
        std::string reply;
        // 16 relayed bytes cannot hold a reply line: the stream must
        // end (EOF) before a complete line arrives.
        EXPECT_FALSE(c.recvLine(reply));
    }
    // The server outlived the mid-write client loss.
    {
        LineClient c(server.port);
        std::string reply;
        ASSERT_TRUE(c.sendLine(kRequest));
        ASSERT_TRUE(c.recvLine(reply));
        EXPECT_NE(reply.find("scnn.simulation_response.v1"),
                  std::string::npos);
    }
    proxy.stop();
    EXPECT_EQ(server.stop(), 0);
}

TEST(FaultProxy, ResetHardClosesTheClientAndTheServerSurvives)
{
    Proc server = startServer();
    Proc proxy = startProxy(server.port,
                            {"--p-pass=0", "--p-reset=1",
                             "--fault-after=8"});
    {
        LineClient c(proxy.port);
        ASSERT_TRUE(c.connected());
        ASSERT_TRUE(c.sendLine(kRequest));
        std::string reply;
        EXPECT_FALSE(c.recvLine(reply)); // RST or EOF, never a line
    }
    {
        LineClient c(server.port);
        std::string reply;
        ASSERT_TRUE(c.sendLine(kRequest));
        ASSERT_TRUE(c.recvLine(reply));
        EXPECT_NE(reply.find("scnn.simulation_response.v1"),
                  std::string::npos);
    }
    proxy.stop();
    EXPECT_EQ(server.stop(), 0);
}

TEST(FaultProxy, BlackholeStarvesTheClientUntilItsOwnTimeout)
{
    Proc server = startServer();
    Proc proxy = startProxy(server.port, {"--p-pass=0",
                                          "--p-blackhole=1"});
    const auto start = Clock::now();
    {
        LineClient c(proxy.port, /*recvTimeoutSec=*/1);
        ASSERT_TRUE(c.connected());
        ASSERT_TRUE(c.sendLine("{\"ping\": 1}"));
        std::string reply;
        EXPECT_FALSE(c.recvLine(reply));
    }
    const double elapsedMs =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    EXPECT_GE(elapsedMs, 900.0); // the client's own timeout, not data
    proxy.stop();
    EXPECT_EQ(server.stop(), 0);
}

TEST(ServeDeadlines, SilentClientIsCutAndCountedAsTimedOut)
{
    const std::string metricsPath = uniquePath("serve_metrics");
    Proc server = start(SCNN_SERVE_BIN,
                        {"--idle-timeout-ms=150",
                         "--metrics=" + metricsPath},
                        "serve");
    const auto begin = Clock::now();
    {
        LineClient c(server.port, /*recvTimeoutSec=*/30);
        ASSERT_TRUE(c.connected());
        // Say nothing: the server must hang up on us, not wait.
        std::string reply;
        EXPECT_FALSE(c.recvLine(reply));
    }
    const double elapsedMs =
        std::chrono::duration<double, std::milli>(Clock::now() - begin)
            .count();
    EXPECT_GE(elapsedMs, 100.0);
    EXPECT_LT(elapsedMs, 20000.0); // the server's clock, not ours

    // A talkative client on the same server is untouched.
    {
        LineClient c(server.port);
        std::string reply;
        ASSERT_TRUE(c.sendLine("{\"ping\": 9}"));
        ASSERT_TRUE(c.recvLine(reply));
        EXPECT_NE(reply.find("\"ping\":9"), std::string::npos);
    }

    EXPECT_EQ(server.stop(), 0);
    JsonValue metrics;
    std::string error;
    ASSERT_TRUE(parseJson(slurp(metricsPath), metrics, error)) << error;
    const JsonValue *conns = metrics.find("connections");
    ASSERT_NE(conns, nullptr);
    EXPECT_EQ(conns->find("accepted")->uint64, 2u);
    EXPECT_EQ(conns->find("timed_out")->uint64, 1u);
    EXPECT_EQ(conns->find("closed")->uint64, 2u);
    EXPECT_EQ(conns->find("active")->uint64, 0u);
}

TEST(FaultProxy, FaultSequenceIsAPureFunctionOfTheSeed)
{
    Proc server = startServer();
    const std::vector<std::string> mix = {
        "--p-pass=1", "--p-delay=1", "--p-truncate=1", "--p-reset=1",
        "--p-blackhole=1", "--fault-after=8", "--delay-ms=1"};
    const int kConns = 12;

    auto drawSequence = [&](uint64_t seed) {
        Proc proxy = startProxy(server.port, mix, seed);
        for (int i = 0; i < kConns; ++i) {
            // Connect and immediately close: the decision is drawn
            // and logged at accept, no traffic needed.  Sequential
            // connects keep the log in accept order.
            LineClient c(proxy.port);
            EXPECT_TRUE(c.connected());
        }
        // Let the proxy log every accept before reading the file.
        const auto deadline = Clock::now() + std::chrono::seconds(10);
        std::vector<std::string> faults;
        while (Clock::now() < deadline) {
            faults = faultLog(proxy);
            if (faults.size() >= kConns)
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        proxy.stop();
        return faults;
    };

    const std::vector<std::string> a = drawSequence(2017);
    const std::vector<std::string> b = drawSequence(2017);
    const std::vector<std::string> c = drawSequence(2018);
    ASSERT_EQ(a.size(), static_cast<size_t>(kConns));
    EXPECT_EQ(a, b); // same seed: identical fault plan
    ASSERT_EQ(c.size(), static_cast<size_t>(kConns));
    EXPECT_NE(a, c); // the seed actually steers the plan
    // The mixed weights actually mix: at least two distinct kinds.
    bool mixed = false;
    for (const std::string &f : a)
        mixed = mixed || f != a.front();
    EXPECT_TRUE(mixed);

    EXPECT_EQ(server.stop(), 0);
}

} // namespace
} // namespace scnn
