/**
 * @file
 * Integration suite for the TCP front end: drives the real scnn_serve
 * binary (SCNN_SERVE_BIN, injected by CMake) over real sockets.
 *
 *  - many concurrent clients, interleaved lockstep and pipelined
 *    traffic, every reply byte-identical to its serial runSession()
 *    twin and in per-client request order;
 *  - saturation: a flooded 1-deep admission queue sheds with
 *    structured outcome:"shed" replies -- one reply per line, never a
 *    hang or a crash;
 *  - graceful drain: SIGTERM closes the listener immediately, every
 *    admitted request still gets its reply, and the process exits 0
 *    (both the client-half-close path and the grace-timeout path);
 *  - CLI fail-fast contract: unwritable --metrics/--port-file paths
 *    and in-use --listen ports are one-line fatal errors;
 *  - shard routing: shardForRequest() is stable, in range, and
 *    spreads distinct workload signatures while keeping
 *    backend-variant requests of one workload on one shard.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <netinet/in.h>
#include <set>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/json.hh"
#include "nn/model_zoo.hh"
#include "sim/service.hh"
#include "sim/session.hh"

namespace scnn {
namespace {

using Clock = std::chrono::steady_clock;

std::string
uniquePath(const char *stem)
{
    static std::atomic<int> counter{0};
    return testing::TempDir() + stem + "_" +
           std::to_string(getpid()) + "_" +
           std::to_string(counter.fetch_add(1));
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// --- process helpers --------------------------------------------------

pid_t
spawn(const std::vector<std::string> &args,
      const std::string &stderrPath)
{
    std::vector<char *> argv;
    for (const auto &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = fork();
    if (pid != 0)
        return pid;
    // Child: stdin from /dev/null (pipe mode then sees EOF), stderr
    // captured for assertions.
    const int devnull = open("/dev/null", O_RDONLY);
    dup2(devnull, STDIN_FILENO);
    const int errFd = open(stderrPath.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (errFd >= 0)
        dup2(errFd, STDERR_FILENO);
    execv(argv[0], argv.data());
    _exit(127);
}

/** Wait for exit with a timeout; SIGKILLs and fails on a hang. */
int
waitForExit(pid_t pid, double timeoutSec = 60.0)
{
    const auto deadline =
        Clock::now() + std::chrono::duration<double>(timeoutSec);
    int status = 0;
    for (;;) {
        const pid_t r = waitpid(pid, &status, WNOHANG);
        if (r == pid)
            break;
        if (Clock::now() > deadline) {
            kill(pid, SIGKILL);
            waitpid(pid, &status, 0);
            ADD_FAILURE() << "server did not exit in " << timeoutSec
                          << "s; killed";
            return -1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

struct Server
{
    pid_t pid = -1;
    int port = 0;
    std::string errPath;

    /** SIGTERM + wait; returns the exit status. */
    int
    stop()
    {
        kill(pid, SIGTERM);
        return waitForExit(pid);
    }
};

Server
startServer(const std::vector<std::string> &extraArgs)
{
    Server s;
    s.errPath = uniquePath("scnn_serve_err");
    const std::string portFile = uniquePath("scnn_serve_port");
    std::vector<std::string> args = {SCNN_SERVE_BIN,
                                     "--listen=127.0.0.1:0",
                                     "--port-file=" + portFile};
    args.insert(args.end(), extraArgs.begin(), extraArgs.end());
    s.pid = spawn(args, s.errPath);

    const auto deadline = Clock::now() + std::chrono::seconds(30);
    for (;;) {
        const std::string text = slurp(portFile);
        if (!text.empty()) {
            s.port = std::atoi(text.c_str());
            break;
        }
        int status = 0;
        if (waitpid(s.pid, &status, WNOHANG) == s.pid) {
            ADD_FAILURE() << "server exited during startup: "
                          << slurp(s.errPath);
            s.pid = -1;
            break;
        }
        if (Clock::now() > deadline) {
            ADD_FAILURE() << "server never wrote its port file";
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GT(s.port, 0);
    return s;
}

// --- socket helpers ---------------------------------------------------

/** One JSON-lines client connection (blocking, 120 s read timeout). */
class LineClient
{
  public:
    explicit LineClient(int port)
    {
        fd_ = socket(AF_INET, SOCK_STREAM, 0);
        struct timeval tv = {120, 0};
        setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        sockaddr_in addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(port));
        inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        for (int attempt = 0;; ++attempt) {
            if (connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)) == 0)
                return;
            if (attempt > 100) {
                close(fd_);
                fd_ = -1;
                return;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
    }

    ~LineClient()
    {
        if (fd_ >= 0)
            close(fd_);
    }

    bool connected() const { return fd_ >= 0; }

    bool
    sendLine(const std::string &line)
    {
        std::string data = line + "\n";
        size_t off = 0;
        while (off < data.size()) {
            const ssize_t w =
                write(fd_, data.data() + off, data.size() - off);
            if (w < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            off += static_cast<size_t>(w);
        }
        return true;
    }

    /** False on EOF / timeout / error. */
    bool
    recvLine(std::string &out)
    {
        out.clear();
        for (;;) {
            const size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                out = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return true;
            }
            char chunk[1 << 14];
            const ssize_t r = read(fd_, chunk, sizeof(chunk));
            if (r < 0 && errno == EINTR)
                continue;
            if (r <= 0)
                return false;
            buf_.append(chunk, static_cast<size_t>(r));
        }
    }

    void halfClose() { shutdown(fd_, SHUT_WR); }

  private:
    int fd_ = -1;
    std::string buf_;
};

// --- request shapes ---------------------------------------------------

std::string
requestLine(uint64_t seed)
{
    return "{\"network\":\"tiny\",\"backends\":[\"scnn\"],\"seed\":" +
           std::to_string(seed) + ",\"threads\":1}";
}

SimulationRequest
request(uint64_t seed)
{
    SimulationRequest req;
    req.network = tinyTestNetwork();
    req.backends.push_back({});
    req.backends.back().backend = "scnn";
    req.seed = seed;
    req.threads = 1;
    return req;
}

/** Serial twins for a seed list (the byte-identity references). */
std::vector<std::string>
serialTwins(const std::vector<uint64_t> &seeds)
{
    std::vector<std::string> twins;
    for (uint64_t s : seeds)
        twins.push_back(toJson(runSession(request(s))));
    return twins;
}

// --- the tests --------------------------------------------------------

TEST(ShardRouting, StableInRangeAndWorkloadAffine)
{
    const SimulationRequest a = request(11);
    for (int n : {1, 2, 3, 8}) {
        const int shard = shardForRequest(a, n);
        EXPECT_GE(shard, 0);
        EXPECT_LT(shard, n);
        // Stable: the same request always routes identically.
        EXPECT_EQ(shard, shardForRequest(a, n));
    }
    // Requests differing only in their backend set share synthesized
    // tensors, so they must land on the same shard (cache affinity).
    SimulationRequest b = request(11);
    b.backends.push_back({});
    b.backends.back().backend = "timeloop";
    EXPECT_EQ(shardForRequest(a, 8), shardForRequest(b, 8));
    // Distinct workload signatures spread: 16 seeds over 2 shards
    // must hit both (deterministic; pinned by the stable hash).
    std::set<int> used;
    for (uint64_t seed = 0; seed < 16; ++seed)
        used.insert(shardForRequest(request(seed), 2));
    EXPECT_EQ(used.size(), 2u);
}

TEST(TcpServer, SixteenConcurrentClientsInOrderByteIdentical)
{
    const std::vector<uint64_t> seeds = {11, 12, 13, 14};
    const std::vector<std::string> twins = serialTwins(seeds);

    // Queue large enough that 16 pipelined clients can never
    // saturate it: this test pins byte identity, not shedding.
    Server server = startServer(
        {"--max-inflight=4", "--queue=1024", "--session-threads=1"});
    ASSERT_GT(server.port, 0);

    constexpr int kClients = 16;
    constexpr int kPerClient = 6;
    std::vector<std::string> failures(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            LineClient conn(server.port);
            if (!conn.connected()) {
                failures[c] = "connect failed";
                return;
            }
            auto shapeAt = [&](int i) {
                return static_cast<size_t>((c + i) % 4);
            };
            std::string reply;
            if (c % 2 == 0) {
                // Lockstep: request, reply, request, reply...
                for (int i = 0; i < kPerClient; ++i) {
                    const size_t s = shapeAt(i);
                    if (!conn.sendLine(requestLine(seeds[s])) ||
                        !conn.recvLine(reply)) {
                        failures[c] = "lockstep send/recv failed";
                        return;
                    }
                    if (reply != twins[s]) {
                        failures[c] = "lockstep reply " +
                                      std::to_string(i) +
                                      " diverged from serial twin";
                        return;
                    }
                }
            } else {
                // Pipelined: all requests first, then all replies,
                // which must come back in request order.
                for (int i = 0; i < kPerClient; ++i)
                    if (!conn.sendLine(requestLine(
                            seeds[shapeAt(i)]))) {
                        failures[c] = "pipelined send failed";
                        return;
                    }
                conn.halfClose();
                for (int i = 0; i < kPerClient; ++i) {
                    if (!conn.recvLine(reply)) {
                        failures[c] = "pipelined recv failed at " +
                                      std::to_string(i);
                        return;
                    }
                    if (reply != twins[shapeAt(i)]) {
                        failures[c] =
                            "pipelined reply " + std::to_string(i) +
                            " out of order or diverged";
                        return;
                    }
                }
                if (conn.recvLine(reply))
                    failures[c] = "extra reply after the stream";
            }
        });
    }
    for (auto &t : clients)
        t.join();
    for (int c = 0; c < kClients; ++c)
        EXPECT_EQ(failures[c], "") << "client " << c;

    EXPECT_EQ(server.stop(), 0) << slurp(server.errPath);
}

TEST(TcpServer, SaturationShedsWithStructuredRepliesAndNeverHangs)
{
    // One worker, a 1-deep queue: a flood of distinct (uncacheable)
    // requests is guaranteed to saturate admission.
    Server server = startServer(
        {"--max-inflight=1", "--queue=1", "--session-threads=1"});
    ASSERT_GT(server.port, 0);

    constexpr int kFlood = 200;
    LineClient conn(server.port);
    ASSERT_TRUE(conn.connected());
    for (int i = 0; i < kFlood; ++i)
        ASSERT_TRUE(conn.sendLine(
            requestLine(1000 + static_cast<uint64_t>(i))));
    conn.halfClose();

    int ok = 0, shed = 0;
    std::string reply;
    for (int i = 0; i < kFlood; ++i) {
        ASSERT_TRUE(conn.recvLine(reply))
            << "stream ended after " << i << " replies";
        JsonValue doc;
        std::string error;
        ASSERT_TRUE(parseJson(reply, doc, error)) << error;
        const JsonValue *schema = doc.find("schema");
        ASSERT_NE(schema, nullptr);
        if (schema->string == "scnn.simulation_response.v1") {
            // In-order: the echoed seed identifies the request line.
            const JsonValue *seed = doc.find("seed");
            ASSERT_NE(seed, nullptr);
            EXPECT_EQ(seed->uint64,
                      1000 + static_cast<uint64_t>(i));
            ++ok;
        } else {
            ASSERT_EQ(schema->string, "scnn.service_error.v1")
                << reply;
            const JsonValue *outcome = doc.find("outcome");
            ASSERT_NE(outcome, nullptr);
            EXPECT_EQ(outcome->string, "shed") << reply;
            // The line field pins per-client ordering of shed
            // replies too.
            const JsonValue *line = doc.find("line");
            ASSERT_NE(line, nullptr);
            EXPECT_EQ(line->uint64, static_cast<uint64_t>(i));
            ++shed;
        }
    }
    EXPECT_FALSE(conn.recvLine(reply)) << "extra reply: " << reply;
    EXPECT_EQ(ok + shed, kFlood);
    EXPECT_GE(ok, 1);
    EXPECT_GE(shed, 1) << "flood never saturated the queue";

    EXPECT_EQ(server.stop(), 0) << slurp(server.errPath);
}

TEST(TcpServer, SigtermDrainsInFlightRepliesAndRefusesNewClients)
{
    const std::vector<uint64_t> seeds = {5};
    const std::vector<std::string> twins = serialTwins(seeds);

    Server server = startServer({"--max-inflight=2", "--queue=64"});
    ASSERT_GT(server.port, 0);

    constexpr int kPipelined = 32;
    LineClient conn(server.port);
    ASSERT_TRUE(conn.connected());
    for (int i = 0; i < kPipelined; ++i)
        ASSERT_TRUE(conn.sendLine(requestLine(5)));

    // Drain: the listener must close (new connections refused), but
    // the established stream keeps its promise -- one reply per
    // request line already sent, byte-identical to the serial twin.
    kill(server.pid, SIGTERM);
    const auto deadline = Clock::now() + std::chrono::seconds(20);
    bool refused = false;
    while (!refused && Clock::now() < deadline) {
        const int fd = socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(server.port));
        inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        refused = connect(fd, reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr)) != 0;
        close(fd);
        if (!refused)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(refused)
        << "listener still accepting after SIGTERM";

    conn.halfClose();
    std::string reply;
    for (int i = 0; i < kPipelined; ++i) {
        ASSERT_TRUE(conn.recvLine(reply))
            << "reply " << i << " dropped during drain";
        EXPECT_EQ(reply, twins[0]) << "reply " << i;
    }
    EXPECT_FALSE(conn.recvLine(reply)) << "extra reply: " << reply;

    EXPECT_EQ(waitForExit(server.pid), 0) << slurp(server.errPath);
}

TEST(TcpServer, DrainGraceForcesStreamEndForLingeringClients)
{
    Server server = startServer({"--drain-grace-ms=200"});
    ASSERT_GT(server.port, 0);

    LineClient conn(server.port);
    ASSERT_TRUE(conn.connected());
    std::string reply;
    for (int i = 0; i < 2; ++i) {
        ASSERT_TRUE(conn.sendLine(requestLine(5)));
        ASSERT_TRUE(conn.recvLine(reply));
    }
    // The client lingers without closing: after the grace period the
    // server must cut the stream itself and still exit 0.
    kill(server.pid, SIGTERM);
    EXPECT_FALSE(conn.recvLine(reply))
        << "server kept the stream past the grace period: " << reply;
    EXPECT_EQ(waitForExit(server.pid), 0) << slurp(server.errPath);
}

// --- CLI fail-fast contract -------------------------------------------

struct CliResult
{
    int exitCode = 0;
    std::string stderrText;
};

CliResult
runCli(const std::vector<std::string> &extraArgs)
{
    const std::string errPath = uniquePath("scnn_serve_cli_err");
    std::vector<std::string> args = {SCNN_SERVE_BIN};
    args.insert(args.end(), extraArgs.begin(), extraArgs.end());
    const pid_t pid = spawn(args, errPath);
    CliResult r;
    r.exitCode = waitForExit(pid, 30.0);
    r.stderrText = slurp(errPath);
    return r;
}

TEST(ServeCli, UnwritableMetricsPathFailsFastWithOneLine)
{
    const CliResult r =
        runCli({"--metrics=/nonexistent-dir-scnn/metrics.json"});
    EXPECT_EQ(r.exitCode, 1) << r.stderrText;
    EXPECT_NE(r.stderrText.find("cannot write --metrics"),
              std::string::npos)
        << r.stderrText;
}

TEST(ServeCli, UnwritablePortFileFailsFastWithOneLine)
{
    const CliResult r = runCli(
        {"--listen=127.0.0.1:0",
         "--port-file=/nonexistent-dir-scnn/port"});
    EXPECT_EQ(r.exitCode, 1) << r.stderrText;
    EXPECT_NE(r.stderrText.find("cannot write --port-file"),
              std::string::npos)
        << r.stderrText;
}

TEST(ServeCli, PortFileWithoutListenIsAUsageError)
{
    const CliResult r = runCli({"--port-file=/tmp/x"});
    EXPECT_EQ(r.exitCode, 1) << r.stderrText;
    EXPECT_NE(r.stderrText.find("--port-file requires --listen"),
              std::string::npos)
        << r.stderrText;
}

TEST(ServeCli, InUseListenPortFailsFastWithOneLine)
{
    // Occupy a port, then ask scnn_serve to listen on it.
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)),
              0);
    ASSERT_EQ(listen(fd, 1), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                          &len),
              0);
    const int port = ntohs(addr.sin_port);

    const CliResult r = runCli(
        {"--listen=127.0.0.1:" + std::to_string(port)});
    close(fd);
    EXPECT_EQ(r.exitCode, 1) << r.stderrText;
    EXPECT_NE(r.stderrText.find("cannot listen on"),
              std::string::npos)
        << r.stderrText;
}

TEST(ServeCli, MalformedListenSpecFailsFast)
{
    const CliResult r = runCli({"--listen=not-a-port"});
    EXPECT_EQ(r.exitCode, 1) << r.stderrText;
    EXPECT_NE(r.stderrText.find("bad --listen"), std::string::npos)
        << r.stderrText;
}

TEST(ServeCli, UnknownFlagPrintsUsage)
{
    const CliResult r = runCli({"--definitely-not-a-flag"});
    EXPECT_EQ(r.exitCode, 2) << r.stderrText;
    EXPECT_NE(r.stderrText.find("usage:"), std::string::npos)
        << r.stderrText;
}

} // namespace
} // namespace scnn
