/**
 * @file
 * Concurrency soak for the SimulationService: dozens of interleaved
 * sessions with mixed networks, backend sets and thread budgets --
 * cache hits and misses, structured per-backend failures, mid-flight
 * cancellations, deadline expiry and queue backpressure -- with every
 * successful response byte-compared against its serial runSession()
 * twin.  The suite runs under ASan/UBSan in CI, so it also proves the
 * service drains and tears down cleanly with no leaks or races on
 * the shared caches.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/json.hh"
#include "nn/model_zoo.hh"
#include "sim/service.hh"
#include "sim/session.hh"

namespace scnn {
namespace {

SimulationRequest
makeRequest(std::vector<BackendSpec> backends, uint64_t seed = 20170624,
            int threads = 1)
{
    SimulationRequest req;
    req.network = tinyTestNetwork();
    req.backends = std::move(backends);
    req.seed = seed;
    req.threads = threads;
    return req;
}

/** The interleaved request mix (all tiny-sized, so the soak is fast
 *  even under sanitizers). */
std::vector<SimulationRequest>
requestMix()
{
    std::vector<SimulationRequest> mix;
    mix.push_back(makeRequest({{"scnn"}}));
    mix.push_back(makeRequest({{"scnn"}}, 20170624, 2));
    mix.push_back(makeRequest(
        {{"scnn"}, {"dcnn"}, {"dcnn-opt"}, {"oracle"}, {"timeloop"}}));
    mix.push_back(makeRequest({{"scnn"}}, 7));
    mix.push_back(makeRequest({{"timeloop"}})); // analytic only
    mix.push_back(makeRequest({{"dcnn"}, {"dcnn-opt"}}));
    // Unknown backend: a structured per-backend failure, still a
    // normal (and cacheable) response.
    mix.push_back(makeRequest({{"scnn"}, {"bogus-backend"}}));

    SimulationRequest dense = makeRequest({{"scnn"}, {"timeloop"}});
    dense.network = withUniformDensity(tinyTestNetwork(), 0.4, 0.6);
    mix.push_back(std::move(dense));

    SimulationRequest chained = makeRequest({{"scnn"}});
    chained.chained = true;
    chained.keepOutputs = false;
    mix.push_back(std::move(chained));

    SimulationRequest allLayers = makeRequest({{"scnn"}});
    allLayers.evalOnly = false;
    mix.push_back(std::move(allLayers));
    return mix;
}

TEST(ServiceStress, InterleavedSessionsMatchSerialTwinsBitExactly)
{
    const std::vector<SimulationRequest> mix = requestMix();

    // Serial twins, computed through the plain session path (no
    // service, no caches).
    std::vector<std::string> twins;
    twins.reserve(mix.size());
    for (const auto &req : mix)
        twins.push_back(toJson(runSession(req)));

    ServiceConfig cfg;
    cfg.workers = 4;
    cfg.queueCapacity = 8; // deliberately small: submit blocks
    cfg.workloadCacheCapacity = 4;
    cfg.responseCacheCapacity = 16;
    SimulationService service(cfg);

    constexpr int kRounds = 6; // 6 x 10 = 60 interleaved sessions
    std::vector<SessionTicket> tickets;
    std::vector<size_t> shape;
    std::vector<bool> tryCancel;
    for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < mix.size(); ++i) {
            tickets.push_back(service.submit(mix[i]));
            shape.push_back(i);
            // A few mid-flight cancellations per round, spread over
            // different request shapes.
            const bool cancelThis =
                (tickets.size() % 7) == 0 && round % 2 == 1;
            tryCancel.push_back(cancelThis);
            if (cancelThis)
                tickets.back().cancel();
        }
    }

    uint64_t cancelled = 0, ok = 0;
    for (size_t i = 0; i < tickets.size(); ++i) {
        const ServiceReply &reply = tickets[i].wait();
        if (reply.outcome == ServiceOutcome::Cancelled) {
            EXPECT_TRUE(tryCancel[i]);
            EXPECT_NE(reply.error.find("cancelled"),
                      std::string::npos)
                << reply.error;
            ++cancelled;
            continue;
        }
        ASSERT_EQ(reply.outcome, ServiceOutcome::Ok)
            << reply.error;
        ASSERT_NE(reply.responseJson, nullptr);
        // The heart of the soak: concurrent, cached, budgeted
        // execution must be byte-identical to the serial client.
        EXPECT_EQ(*reply.responseJson, twins[shape[i]])
            << "request " << i << " (shape " << shape[i]
            << ") diverged from its serial twin";
        ++ok;
    }
    EXPECT_EQ(ok + cancelled, tickets.size());

    service.drain();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, tickets.size());
    EXPECT_EQ(stats.completedOk, ok);
    EXPECT_EQ(stats.cancelled, cancelled);
    EXPECT_EQ(stats.errors, 0u);
    EXPECT_EQ(stats.queueDepth, 0);
    EXPECT_EQ(stats.inflight, 0);
    EXPECT_GT(stats.responseCacheHits + stats.responseCacheMisses,
              0u);
    // 10 distinct shapes cycled 6 times: the response cache must be
    // doing real work.
    EXPECT_GT(stats.responseCacheHits, 0u);
    EXPECT_GT(stats.maxQueueDepth, 0);
    EXPECT_LE(stats.maxQueueDepth, cfg.queueCapacity);
}

TEST(ServiceStress, CachesOffStillMatchesSerialTwins)
{
    const std::vector<SimulationRequest> mix = requestMix();
    ServiceConfig cfg;
    cfg.workers = 3;
    cfg.cacheWorkloads = false;
    cfg.cacheResponses = false;
    SimulationService service(cfg);

    std::vector<SessionTicket> tickets;
    for (int round = 0; round < 2; ++round)
        for (const auto &req : mix)
            tickets.push_back(service.submit(req));
    size_t i = 0;
    for (auto &ticket : tickets) {
        const ServiceReply &reply = ticket.wait();
        ASSERT_EQ(reply.outcome, ServiceOutcome::Ok) << reply.error;
        EXPECT_FALSE(reply.responseCacheHit);
        EXPECT_FALSE(reply.workloadCacheHit);
        EXPECT_EQ(*reply.responseJson,
                  toJson(runSession(mix[i % mix.size()])));
        ++i;
    }
}

TEST(ServiceStress, CraftedLabelsCannotCollideInTheResponseCache)
{
    // The response-cache key length-prefixes client-controlled
    // strings; a label crafted to mimic another request's delimiter
    // structure must not steal that request's cache entry.
    SimulationRequest two =
        makeRequest({{"scnn", "L"}, {"scnn", "M"}});
    SimulationRequest one = makeRequest(
        {{"scnn", "4:scnn,1:L,-1|spec=4:scnn,1:M"}});

    SimulationService service;
    const ServiceReply first = service.submit(two).wait();
    const ServiceReply second = service.submit(one).wait();
    ASSERT_EQ(first.outcome, ServiceOutcome::Ok) << first.error;
    ASSERT_EQ(second.outcome, ServiceOutcome::Ok) << second.error;
    EXPECT_FALSE(second.responseCacheHit);
    EXPECT_NE(*first.responseJson, *second.responseJson);
    EXPECT_EQ(second.response->runs.size(), 1u);
    EXPECT_EQ(*first.responseJson, toJson(runSession(two)));
    EXPECT_EQ(*second.responseJson, toJson(runSession(one)));
}

TEST(ServiceStress, AnalyticOnlyRequestsSkipWorkloadSynthesis)
{
    // The session's needTensors gate is mirrored service-side: a
    // timeloop-only request must not synthesize (or cache) tensors.
    SimulationService service;
    const ServiceReply reply =
        service.submit(makeRequest({{"timeloop"}})).wait();
    ASSERT_EQ(reply.outcome, ServiceOutcome::Ok) << reply.error;
    EXPECT_FALSE(reply.workloadCacheHit);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.workloadCacheHits + stats.workloadCacheMisses,
              0u);
    EXPECT_EQ(stats.workloadCacheEntries, 0u);

    // An oracle with an scnn sibling derives from it -- tensors are
    // synthesized once for the pair, not per spec.
    const ServiceReply pair =
        service.submit(makeRequest({{"scnn"}, {"oracle"}})).wait();
    ASSERT_EQ(pair.outcome, ServiceOutcome::Ok) << pair.error;
    EXPECT_EQ(service.stats().workloadCacheMisses, 1u);
}

TEST(ServiceStress, InvalidRequestsResolveToStructuredErrors)
{
    SimulationService service;

    SimulationRequest empty;
    empty.network = tinyTestNetwork();
    const ServiceReply &r1 = service.submit(empty).wait();
    EXPECT_EQ(r1.outcome, ServiceOutcome::Error);
    EXPECT_NE(r1.error.find("no backends"), std::string::npos)
        << r1.error;

    const ServiceReply &r2 =
        service.submit(makeRequest({{"scnn", "same"},
                                    {"dcnn", "same"}}))
            .wait();
    EXPECT_EQ(r2.outcome, ServiceOutcome::Error);
    EXPECT_NE(r2.error.find("duplicate backend label"),
              std::string::npos)
        << r2.error;
    // Error replies are tagged with the request index for
    // attribution in multiplexed streams.
    EXPECT_NE(r2.error.find("request #"), std::string::npos)
        << r2.error;
}

TEST(ServiceStress, QueuedDeadlineExpiresWithoutRunning)
{
    ServiceConfig cfg;
    cfg.workers = 1; // force queueing behind the blocker
    SimulationService service(cfg);

    const SimulationRequest blocker = makeRequest(
        {{"scnn"}, {"dcnn"}, {"dcnn-opt"}, {"oracle"}, {"timeloop"}});
    SessionTicket first = service.submit(blocker);
    // 1 ns deadline: guaranteed to have expired by the time the
    // worker dequeues it from behind the blocker.
    SessionTicket second =
        service.submit(makeRequest({{"scnn"}}), 1e-6);

    EXPECT_EQ(first.wait().outcome, ServiceOutcome::Ok)
        << first.wait().error;
    const ServiceReply &expired = second.wait();
    EXPECT_EQ(expired.outcome, ServiceOutcome::DeadlineExpired);
    EXPECT_NE(expired.error.find("deadline"), std::string::npos)
        << expired.error;
    EXPECT_EQ(expired.response, nullptr);

    service.drain();
    EXPECT_EQ(service.stats().deadlineExpired, 1u);
}

TEST(ServiceStress, CancelAfterCompletionReportsTooLate)
{
    SimulationService service;
    SessionTicket ticket = service.submit(makeRequest({{"timeloop"}}));
    const ServiceReply &reply = ticket.wait();
    EXPECT_EQ(reply.outcome, ServiceOutcome::Ok) << reply.error;
    // The reply was already delivered; cancel() must report that and
    // leave the delivered reply untouched.
    EXPECT_FALSE(ticket.cancel());
    EXPECT_EQ(ticket.wait().outcome, ServiceOutcome::Ok);
}

TEST(ServiceStress, StatsJsonIsWellFormedAndCarriesTheSchema)
{
    SimulationService service;
    service.submit(makeRequest({{"timeloop"}})).wait();
    const std::string doc = service.statsJson();
    EXPECT_NE(doc.find("\"scnn.service_stats.v1\""),
              std::string::npos);
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(parseJson(doc, parsed, error)) << error;
    ASSERT_TRUE(parsed.isObject());
    EXPECT_NE(parsed.find("latency_ms"), nullptr);
    EXPECT_NE(parsed.find("workload_cache"), nullptr);
    EXPECT_NE(parsed.find("response_cache"), nullptr);
    const JsonValue *submitted = parsed.find("submitted");
    ASSERT_NE(submitted, nullptr);
    EXPECT_EQ(submitted->uint64, 1u);
}

TEST(ServiceStress, ShedRefusalsAreCountedMonotonically)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.queueCapacity = 1;
    SimulationService service(cfg);

    // One blocker in flight plus a full 1-deep queue; every further
    // trySubmit must shed and be counted.
    std::vector<SessionTicket> tickets;
    tickets.push_back(service.submit(makeRequest(
        {{"scnn"}, {"dcnn"}, {"dcnn-opt"}, {"oracle"}, {"timeloop"}})));
    uint64_t shed = 0;
    while (shed < 3) {
        auto t = service.trySubmit(makeRequest({{"scnn"}}));
        if (t)
            tickets.push_back(std::move(*t));
        else
            ++shed;
    }
    for (auto &t : tickets)
        EXPECT_EQ(t.wait().outcome, ServiceOutcome::Ok)
            << t.wait().error;
    service.drain();

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.shed, shed);
    // Shed requests were never admitted, so they are not "submitted".
    EXPECT_EQ(stats.submitted, tickets.size());
    EXPECT_EQ(stats.completedOk, tickets.size());
}

TEST(ServiceStress, StatsJsonBreaksDownRequestsTotalByOutcome)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.queueCapacity = 1;
    SimulationService service(cfg);
    service.submit(makeRequest({{"timeloop"}})).wait();

    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(parseJson(service.statsJson(), parsed, error))
        << error;
    const JsonValue *totals = parsed.find("requests_total");
    ASSERT_NE(totals, nullptr);
    for (const char *key : {"submitted", "ok", "error", "cancelled",
                            "deadline_expired", "shed"})
        ASSERT_NE(totals->find(key), nullptr) << key;
    EXPECT_EQ(totals->find("submitted")->uint64, 1u);
    EXPECT_EQ(totals->find("ok")->uint64, 1u);
    EXPECT_EQ(totals->find("shed")->uint64, 0u);
    // The flat legacy "shed" counter is also present (additive key,
    // same schema version).
    ASSERT_NE(parsed.find("shed"), nullptr);
    // Not part of a fleet: no shard identity block.
    EXPECT_EQ(parsed.find("shard"), nullptr);
}

TEST(ServiceStress, ShardIdentityIsEchoedWhenConfigured)
{
    ServiceConfig cfg;
    cfg.shardIndex = 1;
    cfg.shardCount = 4;
    SimulationService service(cfg);
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(parseJson(service.statsJson(), parsed, error))
        << error;
    const JsonValue *shard = parsed.find("shard");
    ASSERT_NE(shard, nullptr);
    EXPECT_EQ(shard->find("index")->uint64, 1u);
    EXPECT_EQ(shard->find("count")->uint64, 4u);
}

/** Teardown with work still queued: the destructor drains the queue
 *  (a queued request is a promise), then joins cleanly. */
TEST(ServiceStress, DestructorDrainsQueuedWork)
{
    std::vector<SessionTicket> tickets;
    {
        ServiceConfig cfg;
        cfg.workers = 1;
        SimulationService service(cfg);
        for (int i = 0; i < 6; ++i)
            tickets.push_back(service.submit(makeRequest({{"scnn"}})));
    }
    for (auto &ticket : tickets)
        EXPECT_EQ(ticket.wait().outcome, ServiceOutcome::Ok);
}

} // namespace
} // namespace scnn
