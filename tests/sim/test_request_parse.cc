/**
 * @file
 * Robustness property suite for the JSON-lines request parser
 * (parseRequestLine + the common/json parser underneath): malformed,
 * truncated, mutated and adversarially oversized input must always
 * come back as a structured (false, error) result -- never a throw,
 * never fatal(), never a crash.  An unknown *backend name* is the one
 * deliberate pass-through: it parses fine and surfaces as a per-
 * backend failure inside a normal response, which the end-to-end
 * test at the bottom pins down.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hh"
#include "common/random.hh"
#include "sim/service.hh"

namespace scnn {
namespace {

/** Shorthand: parse, expect failure, return the error message. */
std::string
expectReject(const std::string &line)
{
    ParsedServiceRequest out;
    std::string error;
    bool ok = true;
    EXPECT_NO_THROW(ok = parseRequestLine(line, out, error))
        << line;
    EXPECT_FALSE(ok) << "accepted: " << line;
    EXPECT_FALSE(error.empty()) << "no error text for: " << line;
    return error;
}

const char *kValid =
    R"({"network":"tiny","backends":["scnn",{"backend":"timeloop","label":"tl","functional":false}],"seed":7,"threads":2,"chained":false,"eval_only":true,"keep_outputs":false,"profile":false,"density":[0.5,0.75],"deadline_ms":250})";

TEST(RequestParse, ValidLineRoundTrips)
{
    ParsedServiceRequest out;
    std::string error;
    ASSERT_TRUE(parseRequestLine(kValid, out, error)) << error;
    EXPECT_EQ(out.request.network.name(), "tiny-uniform");
    ASSERT_EQ(out.request.backends.size(), 2u);
    EXPECT_EQ(out.request.backends[0].backend, "scnn");
    EXPECT_EQ(out.request.backends[1].backend, "timeloop");
    EXPECT_EQ(out.request.backends[1].label, "tl");
    EXPECT_EQ(out.request.backends[1].functional, 0);
    EXPECT_EQ(out.request.seed, 7u);
    EXPECT_EQ(out.request.threads, 2);
    EXPECT_FALSE(out.request.keepOutputs);
    EXPECT_DOUBLE_EQ(out.deadlineMs, 250.0);
}

TEST(RequestParse, MinimalLineUsesDefaults)
{
    ParsedServiceRequest out;
    std::string error;
    ASSERT_TRUE(parseRequestLine(
        R"({"network":"tiny","backends":["scnn"]})", out, error))
        << error;
    EXPECT_EQ(out.request.seed, 20170624u);
    EXPECT_EQ(out.request.threads, 0);
    EXPECT_TRUE(out.request.evalOnly);
    EXPECT_DOUBLE_EQ(out.deadlineMs, 0.0);
}

TEST(RequestParse, MalformedDocumentsAreRejectedStructurally)
{
    // Truncated / syntactically broken documents.
    expectReject("");
    expectReject("   ");
    expectReject("{");
    expectReject("}");
    expectReject("[");
    expectReject("nul");
    expectReject("{\"network\":\"tiny\"");
    expectReject("{\"network\":\"tiny\",}");
    expectReject("{\"network\" \"tiny\"}");
    expectReject("{'network':'tiny'}");          // wrong quotes
    expectReject("{\"a\":1} trailing");          // trailing garbage
    expectReject("{\"a\":1}{\"b\":2}");          // two documents
    expectReject("{\"a\":\"\x01\"}");            // raw control char
    expectReject("{\"a\":\"\\q\"}");             // bad escape
    expectReject("{\"a\":\"\\ud800\"}");         // lone surrogate
    expectReject("{\"a\":01}");                  // leading zero
    expectReject("{\"a\":1.}");                  // empty fraction
    expectReject("{\"a\":1e}");                  // empty exponent
    expectReject("{\"a\":1e999}");               // double overflow
    expectReject("{\"a\":NaN}");                 // not JSON
    expectReject("{\"a\":1,\"a\":2}");           // duplicate key
}

TEST(RequestParse, WrongTypesAndUnknownFieldsAreNamed)
{
    EXPECT_NE(expectReject(R"({"network":5,"backends":["scnn"]})")
                  .find("'network'"),
              std::string::npos);
    EXPECT_NE(expectReject(
                  R"({"network":"tiny","backends":"scnn"})")
                  .find("'backends'"),
              std::string::npos);
    EXPECT_NE(expectReject(R"({"network":"tiny","backends":[]})")
                  .find("backends"),
              std::string::npos);
    EXPECT_NE(expectReject(
                  R"({"network":"tiny","backends":[42]})")
                  .find("backend spec"),
              std::string::npos);
    EXPECT_NE(expectReject(
                  R"({"network":"tiny","backends":["scnn"],"seed":-1})")
                  .find("'seed'"),
              std::string::npos);
    EXPECT_NE(expectReject(
                  R"({"network":"tiny","backends":["scnn"],"seed":1.5})")
                  .find("'seed'"),
              std::string::npos);
    EXPECT_NE(
        expectReject(
            R"({"network":"tiny","backends":["scnn"],"threads":-2})")
            .find("'threads'"),
        std::string::npos);
    EXPECT_NE(
        expectReject(
            R"({"network":"tiny","backends":["scnn"],"threads":100000})")
            .find("'threads'"),
        std::string::npos);
    EXPECT_NE(
        expectReject(
            R"({"network":"tiny","backends":["scnn"],"chained":"yes"})")
            .find("'chained'"),
        std::string::npos);
    EXPECT_NE(
        expectReject(
            R"({"network":"tiny","backends":["scnn"],"density":[2,0.5]})")
            .find("'density'"),
        std::string::npos);
    EXPECT_NE(
        expectReject(
            R"({"network":"tiny","backends":["scnn"],"deadline_ms":-1})")
            .find("'deadline_ms'"),
        std::string::npos);
    EXPECT_NE(expectReject(
                  R"({"network":"tiny","backends":["scnn"],"frob":1})")
                  .find("unknown request key"),
              std::string::npos);
    EXPECT_NE(
        expectReject(
            R"({"network":"tiny","backends":[{"backend":"scnn","nope":1}]})")
            .find("unknown backend spec key"),
        std::string::npos);
    EXPECT_NE(expectReject(R"({"backends":["scnn"]})")
                  .find("'network'"),
              std::string::npos);
    EXPECT_NE(expectReject(R"({"network":"resnet50","backends":["scnn"]})")
                  .find("unknown network"),
              std::string::npos);
    // Duplicate labels would panic deep in the session; the parser
    // must catch them at the boundary.
    EXPECT_NE(
        expectReject(
            R"({"network":"tiny","backends":["scnn","scnn"]})")
            .find("duplicate"),
        std::string::npos);
    // Chained + functional=0 is a contradiction (chaining consumes
    // each layer's functional output).
    EXPECT_NE(
        expectReject(
            R"({"network":"tiny","backends":[{"backend":"scnn","functional":0}],"chained":true})")
            .find("chained"),
        std::string::npos);
}

TEST(RequestParse, OversizedFieldsHitExplicitLimits)
{
    // A label far beyond the 256-byte string limit.
    std::string longLabel(100000, 'x');
    expectReject(R"({"network":"tiny","backends":[{"backend":"scnn","label":")" +
                 longLabel + R"("}]})");

    // Deep nesting beyond the depth limit.
    std::string deep(64, '[');
    deep += std::string(64, ']');
    expectReject(R"({"network":)" + deep + "}");

    // More backend specs than the protocol allows.
    std::string many = R"({"network":"tiny","backends":[)";
    for (int i = 0; i < 64; ++i)
        many += std::string(i ? "," : "") + "\"b" +
                std::to_string(i) + "\"";
    many += "]}";
    EXPECT_NE(expectReject(many).find("entries"),
              std::string::npos);

    // A document beyond the per-line byte limit.
    std::string huge = R"({"network":"tiny","backends":["scnn"],)";
    huge += R"("profile":false,"pad":")";
    huge += std::string(1 << 17, 'y');
    huge += "\"}";
    expectReject(huge);
}

TEST(RequestParse, EveryTruncationOfAValidLineIsHandled)
{
    const std::string full(kValid);
    for (size_t len = 0; len < full.size(); ++len) {
        ParsedServiceRequest out;
        std::string error;
        bool ok = true;
        EXPECT_NO_THROW(
            ok = parseRequestLine(full.substr(0, len), out, error));
        EXPECT_FALSE(ok) << "prefix of length " << len
                         << " unexpectedly parsed";
    }
    ParsedServiceRequest out;
    std::string error;
    EXPECT_TRUE(parseRequestLine(full, out, error)) << error;
}

TEST(RequestParse, RandomByteMutationsNeverCrashTheParser)
{
    const std::string base(kValid);
    Rng rng("request-parse-fuzz", 20170624);
    for (int iter = 0; iter < 3000; ++iter) {
        std::string line = base;
        const int edits = 1 + static_cast<int>(rng.uniformInt(3));
        for (int e = 0; e < edits; ++e) {
            const size_t pos = rng.uniformInt(line.size());
            line[pos] =
                static_cast<char>(rng.uniformInt(256));
        }
        ParsedServiceRequest out;
        std::string error;
        bool ok = false;
        EXPECT_NO_THROW(ok = parseRequestLine(line, out, error));
        if (ok) {
            // Whatever survived mutation must still satisfy the
            // protocol invariants the service relies on.
            EXPECT_FALSE(out.request.backends.empty());
            EXPECT_FALSE(out.request.network.name().empty());
        } else {
            EXPECT_FALSE(error.empty());
        }
    }
}

TEST(RequestParse, ConfigOverridesParseIntoTheBackendSpec)
{
    ParsedServiceRequest out;
    std::string error;
    ASSERT_TRUE(parseRequestLine(
        R"({"network":"tiny","backends":[{"backend":"scnn","config":{"base":"scnn","pe_rows":4,"mul_f":2,"input_halos":true}}],"threads":1})",
        out, error))
        << error;
    ASSERT_EQ(out.request.backends.size(), 1u);
    const auto &cfg = out.request.backends[0].config;
    ASSERT_TRUE(cfg.has_value());
    EXPECT_EQ(cfg->peRows, 4);
    EXPECT_EQ(cfg->pe.mulF, 2);
    EXPECT_TRUE(cfg->pe.inputHalos);
    // Unswept fields keep the base's defaults.
    EXPECT_EQ(cfg->peCols, scnnConfig().peCols);

    // "base" applies first regardless of key order.
    ASSERT_TRUE(parseRequestLine(
        R"({"network":"tiny","backends":[{"backend":"dcnn","config":{"pe_rows":2,"base":"dcnn"}}],"threads":1})",
        out, error))
        << error;
    ASSERT_TRUE(out.request.backends[0].config.has_value());
    EXPECT_EQ(out.request.backends[0].config->kind, ArchKind::DCNN);
    EXPECT_EQ(out.request.backends[0].config->peRows, 2);
}

TEST(RequestParse, ConfigOverrideStructuralErrorsAreRejected)
{
    // Wrong type for the object itself.
    expectReject(
        R"({"network":"tiny","backends":[{"backend":"scnn","config":7}]})");
    // Unknown base / unknown field / mistyped value.
    EXPECT_NE(
        expectReject(
            R"({"network":"tiny","backends":[{"backend":"scnn","config":{"base":"tpu"}}]})")
            .find("base"),
        std::string::npos);
    EXPECT_NE(
        expectReject(
            R"({"network":"tiny","backends":[{"backend":"scnn","config":{"warp_cores":2}}]})")
            .find("warp_cores"),
        std::string::npos);
    expectReject(
        R"({"network":"tiny","backends":[{"backend":"scnn","config":{"pe_rows":"four"}}]})");
    expectReject(
        R"({"network":"tiny","backends":[{"backend":"scnn","config":{"pe_rows":1.5}}]})");
    expectReject(
        R"({"network":"tiny","backends":[{"backend":"scnn","config":{"pe_rows":-1}}]})");
}

TEST(RequestParse, SemanticallyInvalidOverridesFailPerBackend)
{
    // Structurally fine, semantically broken (a zero-size PE array):
    // the parser passes it through and the session reports a normal
    // structured per-backend failure.
    ParsedServiceRequest parsed;
    std::string error;
    ASSERT_TRUE(parseRequestLine(
        R"({"network":"tiny","backends":[{"backend":"scnn","config":{"pe_rows":0}}],"threads":1})",
        parsed, error))
        << error;
    SimulationService service;
    const ServiceReply &reply =
        service.submit(parsed.request).wait();
    ASSERT_EQ(reply.outcome, ServiceOutcome::Ok) << reply.error;
    ASSERT_EQ(reply.response->runs.size(), 1u);
    EXPECT_FALSE(reply.response->runs.front().ok);
}

TEST(RequestParse, UnknownBackendFlowsThroughAsStructuredFailure)
{
    // The parser accepts it; the session reports it per backend; the
    // service returns a normal Ok reply carrying the failure.
    ParsedServiceRequest parsed;
    std::string error;
    ASSERT_TRUE(parseRequestLine(
        R"({"network":"tiny","backends":["no-such-backend"],"threads":1})",
        parsed, error))
        << error;

    SimulationService service;
    const ServiceReply &reply =
        service.submit(parsed.request).wait();
    ASSERT_EQ(reply.outcome, ServiceOutcome::Ok) << reply.error;
    ASSERT_EQ(reply.response->runs.size(), 1u);
    EXPECT_FALSE(reply.response->runs.front().ok);
    // Satellite contract: session errors are tagged with the
    // offending spec name and index.
    EXPECT_NE(reply.response->runs.front().error.find(
                  "backend spec #0"),
              std::string::npos)
        << reply.response->runs.front().error;
}

} // namespace
} // namespace scnn
