/**
 * @file
 * Session-layer tests: shared-workload semantics, capability gating
 * (chained requests on incapable backends and on the GoogLeNet DAG
 * are rejected cleanly in the response, never with fatal()), oracle
 * derivation from the SCNN sibling run, analytic-only requests, and
 * the JSON serialization of responses.
 */

#include <gtest/gtest.h>

#include "nn/model_zoo.hh"
#include "sim/session.hh"

namespace scnn {
namespace {

SimulationRequest
tinyRequest(std::vector<BackendSpec> backends)
{
    SimulationRequest req;
    req.network = tinyTestNetwork();
    req.seed = 7;
    req.backends = std::move(backends);
    return req;
}

TEST(Session, SharedWorkloadComparisonAcrossBackends)
{
    const SimulationResponse resp = runSession(
        tinyRequest({{"scnn"}, {"dcnn"}, {"dcnn-opt"}, {"timeloop"}}));
    EXPECT_TRUE(resp.allOk());
    ASSERT_EQ(resp.runs.size(), 4u);
    const size_t layers = tinyTestNetwork().numEvalLayers();
    for (const auto &run : resp.runs) {
        EXPECT_TRUE(run.ok) << run.backend << ": " << run.error;
        EXPECT_EQ(run.result.layers.size(), layers) << run.backend;
    }
    // Same workload, different architectures: the dense backends
    // report identical dense-MAC counts per layer as SCNN.
    const auto &scnn = resp.get("scnn").result;
    const auto &dcnn = resp.get("dcnn").result;
    for (size_t i = 0; i < layers; ++i) {
        EXPECT_EQ(scnn.layers[i].denseMacs, dcnn.layers[i].denseMacs);
        EXPECT_EQ(scnn.layers[i].layerName, dcnn.layers[i].layerName);
    }
}

TEST(Session, OracleDerivedFromScnnSiblingRun)
{
    const SimulationResponse resp =
        runSession(tinyRequest({{"scnn"}, {"oracle"}}));
    EXPECT_TRUE(resp.allOk());
    const auto &scnn = resp.get("scnn").result;
    const auto &oracle = resp.get("oracle").result;
    ASSERT_EQ(scnn.layers.size(), oracle.layers.size());
    for (size_t i = 0; i < scnn.layers.size(); ++i) {
        EXPECT_LE(oracle.layers[i].cycles, scnn.layers[i].cycles);
        // Derived view of the same simulation: identical work counts
        // and a back-pointer to the measured cycles.
        EXPECT_EQ(oracle.layers[i].products, scnn.layers[i].products);
        EXPECT_EQ(oracle.layers[i].stats.get("scnn_cycles"),
                  static_cast<double>(scnn.layers[i].cycles));
        EXPECT_EQ(oracle.layers[i].archName, "SCNN-oracle");
    }
}

TEST(Session, TwoCycleLevelSpecsOfTheSameBackendGetRealTensors)
{
    // Regression: the tensor-synthesis exemption must only apply to
    // oracle specs with a donor, not to any pair of same-config scnn
    // specs (which would otherwise run on empty shell workloads).
    const SimulationResponse resp = runSession(
        tinyRequest({{"scnn", "a"}, {"scnn", "b"}}));
    EXPECT_TRUE(resp.allOk());
    const auto &a = resp.get("a").result;
    const auto &b = resp.get("b").result;
    ASSERT_FALSE(a.layers.empty());
    EXPECT_GT(a.totalProducts(), 0u);
    for (size_t i = 0; i < a.layers.size(); ++i)
        EXPECT_EQ(a.layers[i].cycles, b.layers[i].cycles);
}

TEST(Session, OracleIgnoresDonorWithDifferentHardware)
{
    // An scnn spec whose config was mutated without renaming (the
    // ablation-bench pattern) is not valid donor hardware for a
    // default-config oracle: the oracle must simulate on its own
    // Table II configuration instead.
    AcceleratorConfig mutated = scnnConfig(); // name stays "SCNN"
    mutated.pe.accumBanks = 8;
    const SimulationResponse mixed = runSession(
        tinyRequest({{"scnn", "scnn", mutated}, {"oracle"}}));
    const SimulationResponse alone =
        runSession(tinyRequest({{"oracle"}}));
    EXPECT_TRUE(mixed.allOk());
    const auto &viaMixed = mixed.get("oracle").result;
    const auto &viaAlone = alone.get("oracle").result;
    ASSERT_EQ(viaMixed.layers.size(), viaAlone.layers.size());
    for (size_t i = 0; i < viaMixed.layers.size(); ++i)
        EXPECT_EQ(viaMixed.layers[i].cycles,
                  viaAlone.layers[i].cycles);
}

TEST(Session, StandaloneOracleMatchesDerivedOracle)
{
    const SimulationResponse together =
        runSession(tinyRequest({{"scnn"}, {"oracle"}}));
    const SimulationResponse alone =
        runSession(tinyRequest({{"oracle"}}));
    const auto &a = together.get("oracle").result;
    const auto &b = alone.get("oracle").result;
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (size_t i = 0; i < a.layers.size(); ++i)
        EXPECT_EQ(a.layers[i].cycles, b.layers[i].cycles);
}

TEST(Session, ChainedOnGoogLeNetRejectedCleanlyForDenseBackends)
{
    // The old API fatal()ed inside runNetworkChained on the inception
    // DAG; the session reports a per-backend capability error and the
    // process lives on.
    SimulationRequest req;
    req.network = googLeNet();
    req.backends = {{"dcnn"}, {"timeloop"}};
    req.chained = true;
    const SimulationResponse resp = runSession(req);
    ASSERT_EQ(resp.runs.size(), 2u);
    for (const auto &run : resp.runs) {
        EXPECT_FALSE(run.ok) << run.backend;
        EXPECT_NE(run.error.find("chained"), std::string::npos)
            << run.backend;
        EXPECT_TRUE(run.result.layers.empty());
    }
}

TEST(Session, ChainedOnShapeInconsistentNetworkRejectedCleanly)
{
    // Implicit chaining records an f1->f2 edge, but the shapes do not
    // line up, so neither the sequential path nor the DAG executor
    // can run it; the scnn backend must reject it cleanly.
    Network net("frankennet");
    net.addLayer(makeConv("f1", 8, 16, 8, 3, 1, 0.5, 0.5));
    net.addLayer(makeConv("f2", 64, 16, 8, 3, 1, 0.5, 0.5)); // mismatch
    ASSERT_FALSE(net.isSequential());
    ASSERT_FALSE(net.topologyErrors().empty());

    SimulationRequest req;
    req.network = net;
    req.backends = {{"scnn"}};
    req.chained = true;
    const SimulationResponse resp = runSession(req);
    ASSERT_FALSE(resp.runs.front().ok);
    EXPECT_NE(resp.runs.front().error.find(
                  "neither sequential nor an executable DAG"),
              std::string::npos)
        << resp.runs.front().error;
}

TEST(Session, ChainedSequentialRunsThroughTheScnnBackend)
{
    SimulationRequest req;
    req.network = tinyTestNetwork();
    req.seed = 11;
    req.backends = {{"scnn"}};
    req.chained = true;
    const SimulationResponse resp = runSession(req);
    ASSERT_TRUE(resp.runs.front().ok) << resp.runs.front().error;
    const auto &nr = resp.runs.front().result;
    EXPECT_EQ(nr.networkName, "tiny-chained");
    ASSERT_FALSE(nr.layers.empty());
    for (const auto &l : nr.layers)
        EXPECT_TRUE(l.stats.has("chained_input_density"))
            << l.layerName;
}

TEST(Session, BadBackendDoesNotPoisonTheRequest)
{
    AcceleratorConfig broken = scnnConfig();
    broken.ppuLanes = 0;
    const SimulationResponse resp = runSession(tinyRequest(
        {{"scnn"}, {"scnn", "broken", broken}, {"bogus-backend"}}));
    EXPECT_FALSE(resp.allOk());
    EXPECT_TRUE(resp.get("scnn").ok);
    EXPECT_FALSE(resp.find("broken")->ok);
    EXPECT_NE(resp.find("broken")->error.find("PPU"),
              std::string::npos);
    EXPECT_FALSE(resp.find("bogus-backend")->ok);
    EXPECT_THROW(resp.get("bogus-backend"), SimulationError);
}

TEST(Session, AnalyticOnlyRequestsSkipTensorSynthesis)
{
    // TimeLoop-only sessions run on layer parameters alone; the shell
    // workload means even a huge network costs no tensor memory.
    // (Behaviourally observable: results match estimateNetwork, and
    // the request completes quickly.)
    SimulationRequest req;
    req.network = vgg16();
    req.backends = {{"timeloop", "a", scnnConfig()},
                    {"timeloop", "b", dcnnConfig()}};
    const SimulationResponse resp = runSession(req);
    EXPECT_TRUE(resp.allOk());
    EXPECT_GT(resp.get("a").result.totalCycles(), 0u);
    EXPECT_GT(resp.get("b").result.totalCycles(), 0u);
    EXPECT_EQ(resp.get("a").arch, "SCNN");
    EXPECT_EQ(resp.get("b").arch, "DCNN");
}

TEST(Session, ResponseSerializesToBalancedJson)
{
    AcceleratorConfig broken = scnnConfig();
    broken.peRows = 0;
    const SimulationResponse resp = runSession(
        tinyRequest({{"scnn"}, {"timeloop"},
                     {"scnn", "bad", broken}}));
    const std::string doc = toJson(resp); // fatal()s if unbalanced
    EXPECT_EQ(doc.front(), '{');
    EXPECT_EQ(doc.back(), '}');
    EXPECT_NE(doc.find("\"schema\":\"scnn.simulation_response.v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"backend\":\"scnn\""), std::string::npos);
    EXPECT_NE(doc.find("\"totals\""), std::string::npos);
    EXPECT_NE(doc.find("\"stats\""), std::string::npos);
    // The failed backend carries its error instead of results.
    EXPECT_NE(doc.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(doc.find("empty PE array"), std::string::npos);
    // Quotes in error text and stat names survive escaping: the
    // document has balanced braces/brackets.
    int depth = 0;
    bool inStr = false;
    for (size_t i = 0; i < doc.size(); ++i) {
        const char c = doc[i];
        if (inStr) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inStr = false;
            continue;
        }
        if (c == '"')
            inStr = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Session, ThreadsResolvedOncePerRequest)
{
    SimulationRequest req = tinyRequest({{"timeloop"}});
    req.threads = 3;
    const SimulationResponse resp = runSession(req);
    EXPECT_EQ(resp.threads, 3);
    // 0 resolves through the common/parallel chain to >= 1.
    req.threads = 0;
    EXPECT_GE(runSession(req).threads, 1);
}

TEST(Session, ErrorsAreTaggedWithSpecNameAndIndex)
{
    // A multiplexed service interleaves many responses; every
    // session-surfaced error names the offending spec and its index
    // so mid-batch failures stay attributable.
    AcceleratorConfig broken = scnnConfig();
    broken.ppuLanes = 0;
    const SimulationResponse resp = runSession(tinyRequest(
        {{"scnn"}, {"scnn", "broken", broken}, {"bogus-backend"}}));
    EXPECT_NE(resp.find("broken")->error.find(
                  "backend spec #1 ('broken', scnn)"),
              std::string::npos)
        << resp.find("broken")->error;
    EXPECT_NE(resp.find("bogus-backend")->error.find(
                  "backend spec #2 ('bogus-backend', bogus-backend)"),
              std::string::npos)
        << resp.find("bogus-backend")->error;
}

TEST(Session, ChainedErrorsCarryTheSpecTagToo)
{
    SimulationRequest req;
    req.network = tinyTestNetwork();
    req.backends = {{"timeloop", "tl"}}; // cannot chain
    req.chained = true;
    const SimulationResponse resp = runSession(req);
    ASSERT_FALSE(resp.runs.front().ok);
    EXPECT_NE(resp.runs.front().error.find(
                  "backend spec #0 ('tl', timeloop)"),
              std::string::npos)
        << resp.runs.front().error;
}

TEST(Session, SharedWorkloadsProduceBitIdenticalResponses)
{
    // The service's workload cache hands sessions pre-synthesized
    // tensors; the response must be byte-identical to a session that
    // synthesizes its own.
    SimulationRequest req = tinyRequest({{"scnn"}, {"timeloop"}});
    req.threads = 1;
    const std::string fresh = toJson(runSession(req));

    auto shared = std::make_shared<std::vector<LayerWorkload>>();
    for (const auto &layer : sessionLayers(req))
        shared->push_back(makeWorkload(layer, req.seed));
    req.sharedWorkloads = shared;
    EXPECT_EQ(toJson(runSession(req)), fresh);
}

TEST(Session, PreCancelledSessionAbortsWithSimulationError)
{
    SimulationRequest req = tinyRequest({{"scnn"}});
    auto flag = std::make_shared<std::atomic<bool>>(true);
    req.cancel = flag;
    EXPECT_THROW(runSession(req), SimulationError);

    // Chained sessions check between backends.
    SimulationRequest chained = tinyRequest({{"scnn"}});
    chained.chained = true;
    chained.cancel = flag;
    EXPECT_THROW(runSession(chained), SimulationError);
}

} // anonymous namespace
} // namespace scnn
