/**
 * @file
 * Backend-registry tests: every paper architecture is constructible
 * by name with a coherent (name, kind, capabilities) triple; unknown
 * names and invalid or kind-mismatched configurations are rejected
 * recoverably (SimulationError carrying the descriptive validate()
 * error list), never with fatal().
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/backends.hh"
#include "sim/registry.hh"

namespace scnn {
namespace {

TEST(Registry, AllPaperBackendsRegistered)
{
    const std::vector<std::string> names = registeredBackends();
    for (const char *expected :
         {"scnn", "dcnn", "dcnn-opt", "oracle", "timeloop"}) {
        EXPECT_TRUE(BackendRegistry::instance().has(expected))
            << expected;
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
    }
}

TEST(Registry, RoundTripEveryBackendName)
{
    for (const std::string &name : registeredBackends()) {
        const auto sim = makeSimulator(name);
        ASSERT_NE(sim, nullptr) << name;
        EXPECT_EQ(sim->name(), name);
        EXPECT_TRUE(sim->config().validate().empty()) << name;
    }
}

TEST(Registry, DefaultConfigsMatchThePaperTables)
{
    EXPECT_EQ(makeSimulator("scnn")->config().kind, ArchKind::SCNN);
    EXPECT_EQ(makeSimulator("dcnn")->config().kind, ArchKind::DCNN);
    EXPECT_EQ(makeSimulator("dcnn-opt")->config().kind,
              ArchKind::DCNN_OPT);
    EXPECT_EQ(makeSimulator("oracle")->config().kind, ArchKind::SCNN);
    EXPECT_EQ(makeSimulator("timeloop")->config().kind,
              ArchKind::SCNN);
    EXPECT_EQ(makeSimulator("scnn")->config().multipliers(), 1024);
    EXPECT_EQ(makeSimulator("dcnn")->config().multipliers(), 1024);
}

TEST(Registry, CapabilitiesDistinguishTheBackends)
{
    const auto scnn = makeSimulator("scnn");
    EXPECT_TRUE(scnn->capabilities().cycleLevel);
    EXPECT_TRUE(scnn->capabilities().functional);
    EXPECT_TRUE(scnn->capabilities().chained);
    EXPECT_TRUE(scnn->capabilities().chainedDag);

    const auto dcnn = makeSimulator("dcnn");
    EXPECT_TRUE(dcnn->capabilities().cycleLevel);
    EXPECT_FALSE(dcnn->capabilities().chained);
    EXPECT_FALSE(dcnn->capabilities().functionalByDefault);

    const auto timeloop = makeSimulator("timeloop");
    EXPECT_FALSE(timeloop->capabilities().cycleLevel);
    EXPECT_FALSE(timeloop->capabilities().functional);
    EXPECT_FALSE(timeloop->capabilities().chained);
}

TEST(Registry, UnknownNameThrowsWithRegisteredList)
{
    try {
        makeSimulator("npu-9000");
        FAIL() << "expected SimulationError";
    } catch (const SimulationError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("npu-9000"), std::string::npos);
        EXPECT_NE(msg.find("scnn"), std::string::npos); // lists names
    }
}

TEST(Registry, InvalidConfigRejectedWithErrorList)
{
    AcceleratorConfig cfg = scnnConfig();
    cfg.peRows = 0;
    cfg.dramBitsPerCycle = 0;
    try {
        makeSimulator("scnn", cfg);
        FAIL() << "expected SimulationError";
    } catch (const SimulationError &e) {
        const std::string msg = e.what();
        // Both problems named, not just the first.
        EXPECT_NE(msg.find("empty PE array"), std::string::npos);
        EXPECT_NE(msg.find("DRAM"), std::string::npos);
    }
}

TEST(Registry, KindMismatchRejected)
{
    EXPECT_THROW(makeSimulator("scnn", dcnnConfig()), SimulationError);
    EXPECT_THROW(makeSimulator("oracle", dcnnConfig()),
                 SimulationError);
    EXPECT_THROW(makeSimulator("dcnn", scnnConfig()), SimulationError);
    // TimeLoop models all three architectures.
    EXPECT_NO_THROW(makeSimulator("timeloop", dcnnConfig()));
    EXPECT_NO_THROW(makeSimulator("timeloop", dcnnOptConfig()));
}

TEST(Registry, DcnnBackendNameTracksKind)
{
    EXPECT_EQ(makeSimulator("dcnn-opt")->name(), "dcnn-opt");
    EXPECT_EQ(makeSimulator("dcnn", dcnnOptConfig())->name(),
              "dcnn-opt");
}

TEST(Registry, ExtensionBackendsRegisterByName)
{
    // The load-bearing seam: a new backend is one registration.
    BackendRegistry::instance().registerBackend(
        "scnn-alias", scnnConfig, [](AcceleratorConfig cfg) {
            return std::unique_ptr<Simulator>(
                new ScnnBackend(std::move(cfg)));
        });
    EXPECT_TRUE(BackendRegistry::instance().has("scnn-alias"));
    EXPECT_EQ(makeSimulator("scnn-alias")->name(), "scnn");
}

} // anonymous namespace
} // namespace scnn
