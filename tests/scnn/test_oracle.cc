/** @file Unit tests for the SCNN(oracle) bound. */

#include <gtest/gtest.h>

#include "nn/workload.hh"
#include "scnn/oracle.hh"
#include "scnn/simulator.hh"

namespace scnn {
namespace {

TEST(Oracle, DividesLandedProductsByMultipliers)
{
    LayerResult r;
    r.landedProducts = 10240;
    EXPECT_EQ(oracleCycles(r, scnnConfig()), 10u);
    r.landedProducts = 10241;
    EXPECT_EQ(oracleCycles(r, scnnConfig()), 11u);
}

TEST(Oracle, AtLeastOneCycle)
{
    LayerResult r;
    r.landedProducts = 0;
    EXPECT_EQ(oracleCycles(r, scnnConfig()), 1u);
}

TEST(Oracle, ExpectedFormMatchesIdealMacs)
{
    const ConvLayerParams p =
        makeConv("o", 16, 16, 16, 3, 1, 0.5, 0.5);
    EXPECT_NEAR(oracleCyclesExpected(p, scnnConfig()),
                p.idealMacs() / 1024.0, 1e-9);
}

TEST(Oracle, LowerBoundsTheSimulator)
{
    // The oracle is a hard lower bound on simulated cycles.
    const ConvLayerParams p =
        makeConv("bound", 32, 64, 28, 3, 1, 0.4, 0.4);
    const LayerWorkload w = makeWorkload(p, 11);
    ScnnSimulator sim(scnnConfig());
    const LayerResult r = sim.runLayer(w);
    EXPECT_LE(oracleCycles(r, scnnConfig()), r.cycles);
}

TEST(Oracle, GapWidensOnSmallLayers)
{
    // Section VI-B: fragmentation makes SCNN fall further behind the
    // oracle on small late-network layers.
    ScnnSimulator sim(scnnConfig());
    const AcceleratorConfig cfg = scnnConfig();

    const ConvLayerParams big =
        makeConv("big", 64, 128, 56, 3, 1, 0.4, 0.4);
    const ConvLayerParams small =
        makeConv("small", 832, 128, 7, 1, 0, 0.4, 0.35);

    const LayerResult rb = sim.runLayer(makeWorkload(big, 4));
    const LayerResult rs = sim.runLayer(makeWorkload(small, 4));

    const double gapBig =
        static_cast<double>(rb.cycles) / oracleCycles(rb, cfg);
    const double gapSmall =
        static_cast<double>(rs.cycles) / oracleCycles(rs, cfg);
    EXPECT_GT(gapSmall, gapBig);
}

} // anonymous namespace
} // namespace scnn
