/**
 * @file
 * Kernel parity golden tests for the specialized SoA kernel layer.
 *
 * The PE's F x I Cartesian-product kernel was rebuilt from an AoS
 * per-product loop (per-product landing-window branches, stride
 * divisions, per-product bank-address multiplies) into template-
 * specialized streaming kernels over structure-of-arrays substreams.
 * These tests pin the refactor:
 *
 *  1. runGroup must be bit-identical -- every stat counter and every
 *     functional partial sum -- to a reference implementation of the
 *     pre-refactor loop, on PE tiles of AlexNet conv1..conv5 (conv1
 *     exercises the general-stride path at stride 4, conv2/4/5 the
 *     grouped-convolution weight blocks), in both halo modes.
 *  2. The stats-only kernel must report exactly the same counters as
 *     the functional kernel.
 *  3. Full-layer LayerResults (cycles, products, landed, conflict
 *     stalls, energy, functional outputs) must be bit-identical
 *     across 1/2/8 worker threads in both halo modes.
 *
 * Every case runs under both SCNN_SIMD kernel modes -- the scalar
 * twins and the vectorized lane-layer kernels -- which pins the
 * SIMD rebuild (conflict-count bank routing, gather/scatter
 * accumulation with the conflict fallback) bit-identical to both the
 * scalar kernels and the pre-refactor reference.  On builds whose
 * lane layer has no vector kernel scheme the two modes coincide.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/simd.hh"
#include "nn/model_zoo.hh"
#include "nn/workload.hh"
#include "scnn/pe.hh"
#include "scnn/simulator.hh"
#include "scnn/tiling.hh"

namespace scnn {
namespace {

/** Run a callback under each SCNN_SIMD mode, restoring the ambient
 *  mode afterwards; the callback receives a tag for messages. */
template <typename Fn>
void
forEachSimdMode(Fn &&fn)
{
    const simd::Mode ambient = simd::mode();
    for (const simd::Mode m : {simd::Mode::Native, simd::Mode::Scalar}) {
        simd::setMode(m);
        fn(m == simd::Mode::Native ? "/simd=native" : "/simd=scalar");
    }
    simd::setMode(ambient);
}

/**
 * The pre-refactor AoS kernel, kept verbatim as the golden reference:
 * decoded coordinate entries, per-product landing-window branches,
 * stride divisions, and per-product bank addressing through the
 * scalar beginOp()/route()/finishOp() interface.
 */
PeGroupStats
referenceRunGroup(const AcceleratorConfig &cfg,
                  const ConvLayerParams &layer,
                  const CompressedActTile &acts,
                  const std::vector<CompressedWeightBlock> &wtBlocks,
                  int k0, TileRect inTile, TileRect accRect,
                  GroupAccum *accum)
{
    PeGroupStats st;
    if (inTile.empty() || accRect.empty())
        return st;

    AccumulatorBanks banks(cfg.pe.accumBanks, 2 * cfg.pe.mulI,
                           cfg.pe.xbarQueueDepth);
    const size_t F = static_cast<size_t>(cfg.pe.mulF);
    const size_t I = static_cast<size_t>(cfg.pe.mulI);
    const int padX = layer.padX;
    const int padY = layer.padY;
    const int strideX = layer.strideX;
    const int strideY = layer.strideY;
    const int accH = accRect.height();
    const int phases = layer.geometry().phases();

    const int loX = cfg.pe.inputHalos ? accRect.x0 : 0;
    const int hiX = cfg.pe.inputHalos ? accRect.x1 : layer.outWidth();
    const int loY = cfg.pe.inputHalos ? accRect.y0 : 0;
    const int hiY = cfg.pe.inputHalos ? accRect.y1 : layer.outHeight();

    for (int c = 0; c < acts.numChannels(); ++c) {
        for (int p = 0; p < phases; ++p) {
            const std::vector<ActEntry> A = acts.decodedEntries(c, p);
            const std::vector<WtEntry> W =
                wtBlocks[static_cast<size_t>(c)].decodedEntries(p);
            if (A.empty() || W.empty())
                continue;

            st.actEntries += A.size();

            const size_t nA = A.size();
            const size_t nW = W.size();
            for (size_t ai = 0; ai < nA; ai += I) {
                const size_t aEnd = std::min(nA, ai + I);
                st.wtEntries += nW;
                for (size_t wi = 0; wi < nW; wi += F) {
                    const size_t wEnd = std::min(nW, wi + F);
                    banks.beginOp();
                    st.products += (aEnd - ai) * (wEnd - wi);
                    for (size_t a = ai; a < aEnd; ++a) {
                        const int axp = A[a].x + padX;
                        const int ayp = A[a].y + padY;
                        for (size_t w = wi; w < wEnd; ++w) {
                            const int ox = (axp - W[w].r) / strideX;
                            const int oy = (ayp - W[w].s) / strideY;
                            if (ox < loX || ox >= hiX || oy < loY ||
                                oy >= hiY) {
                                continue;
                            }
                            ++st.landed;
                            const int bank = banks.bankOf(
                                W[w].k - k0, ox - accRect.x0,
                                oy - accRect.y0, accH);
                            banks.route(bank);
                            if (accum) {
                                accum->at(W[w].k - k0, ox, oy) +=
                                    static_cast<double>(A[a].value) *
                                    static_cast<double>(W[w].value);
                            }
                        }
                    }
                    const uint64_t opc = banks.finishOp();
                    st.cycles += opc;
                    st.conflictStalls += opc - 1;
                    ++st.mulOps;
                }
            }
        }
    }
    return st;
}

void
expectStatsEqual(const PeGroupStats &a, const PeGroupStats &b,
                 const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.mulOps, b.mulOps) << what;
    EXPECT_EQ(a.products, b.products) << what;
    EXPECT_EQ(a.landed, b.landed) << what;
    EXPECT_EQ(a.actEntries, b.actEntries) << what;
    EXPECT_EQ(a.wtEntries, b.wtEntries) << what;
    EXPECT_EQ(a.conflictStalls, b.conflictStalls) << what;
}

/** Kernel-level parity on one PE of one AlexNet layer, under the
 *  active SCNN_SIMD mode. */
void
checkKernelParity(const ConvLayerParams &layer, bool inputHalos,
                  int pr, int pc, int k0, int kc,
                  const std::string &modeTag)
{
    AcceleratorConfig cfg = scnnConfig();
    cfg.pe.inputHalos = inputHalos;

    const LayerWorkload w = makeWorkload(layer, 20170624);
    const ConvGeometry geom = layer.geometry();
    SpatialTiling tiling(layer, cfg.peRows, cfg.peCols);

    const TileRect out = tiling.outputTile(pr, pc);
    const TileRect in = inputHalos ? tiling.inputHaloTile(pr, pc)
                                   : tiling.inputTile(pr, pc);
    const TileRect acc = inputHalos ? out : tiling.accumRect(pr, pc);

    CompressedActTile tile(w.input, in.x0, in.x1, in.y0, in.y1, geom);
    std::vector<CompressedWeightBlock> blocks;
    blocks.reserve(static_cast<size_t>(layer.inChannels));
    const int k1 = std::min(layer.outChannels, k0 + kc);
    for (int c = 0; c < layer.inChannels; ++c)
        blocks.emplace_back(w.weights, k0, k1, c, layer.inChannels,
                            layer.groups, geom);

    const std::string what = layer.name + (inputHalos ? "/ih" : "/oh") +
                             "/pe(" + std::to_string(pr) + "," +
                             std::to_string(pc) + ")/k0=" +
                             std::to_string(k0) + modeTag;

    ProcessingElement pe(cfg, layer, in, out, acc);
    GroupAccum newAccum;
    newAccum.reset(acc, k1 - k0);
    const PeGroupStats got =
        pe.runGroup(tile, blocks, k0, &newAccum);

    GroupAccum refAccum;
    refAccum.reset(acc, k1 - k0);
    const PeGroupStats ref = referenceRunGroup(
        cfg, layer, tile, blocks, k0, in, acc, &refAccum);

    expectStatsEqual(ref, got, what);
    ASSERT_EQ(refAccum.values.size(), newAccum.values.size()) << what;
    for (size_t i = 0; i < refAccum.values.size(); ++i) {
        ASSERT_EQ(refAccum.values[i], newAccum.values[i])
            << what << " accum[" << i << "]";
    }

    // The stats-only kernel must count exactly what the functional
    // kernel counts.
    const PeGroupStats statsOnly = pe.runGroup(tile, blocks, k0,
                                               nullptr);
    expectStatsEqual(got, statsOnly, what + "/stats-only");
}

std::vector<ConvLayerParams>
alexNetConvLayers()
{
    const Network net = alexNet();
    return net.layers();
}

TEST(KernelParity, AlexNetLayersMatchPreRefactorKernel)
{
    forEachSimdMode([&](const std::string &modeTag) {
        for (const ConvLayerParams &layer : alexNetConvLayers()) {
            for (const bool inputHalos : {false, true}) {
                // An interior PE, a corner PE (landing-window edge
                // cases), and a second channel group (k-relative
                // offsets).
                checkKernelParity(layer, inputHalos, 3, 4, 0, 16,
                                  modeTag);
                checkKernelParity(layer, inputHalos, 0, 0, 0, 16,
                                  modeTag);
                checkKernelParity(layer, inputHalos, 7, 7, 16, 16,
                                  modeTag);
            }
        }
    });
}

void
expectLayerResultsBitIdentical(const LayerResult &a,
                               const LayerResult &b,
                               const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.computeCycles, b.computeCycles) << what;
    EXPECT_EQ(a.drainExposedCycles, b.drainExposedCycles) << what;
    EXPECT_EQ(a.mulArrayOps, b.mulArrayOps) << what;
    EXPECT_EQ(a.products, b.products) << what;
    EXPECT_EQ(a.landedProducts, b.landedProducts) << what;
    EXPECT_EQ(a.stats.get("conflict_stall_cycles"),
              b.stats.get("conflict_stall_cycles"))
        << what;
    EXPECT_EQ(a.energyPj, b.energyPj) << what;
    EXPECT_EQ(a.dramWeightBits, b.dramWeightBits) << what;
    EXPECT_EQ(a.dramActBits, b.dramActBits) << what;
    EXPECT_EQ(a.stats.entries(), b.stats.entries()) << what;
    ASSERT_EQ(a.output.channels(), b.output.channels()) << what;
    if (a.output.channels() > 0)
        EXPECT_EQ(maxAbsDiff(a.output, b.output), 0.0) << what;
}

TEST(KernelParity, AlexNetLayerResultsIdenticalAt1_2_8Threads)
{
    for (const ConvLayerParams &layer : alexNetConvLayers()) {
        const LayerWorkload w = makeWorkload(layer, 20170624);
        for (const bool inputHalos : {false, true}) {
            AcceleratorConfig cfg = scnnConfig();
            cfg.pe.inputHalos = inputHalos;
            ScnnSimulator sim(cfg);

            // The serial scalar-kernel run is the anchor; every
            // SCNN_SIMD mode x thread count must reproduce it bit for
            // bit (stats, energy, functional output).
            const simd::Mode ambient = simd::mode();
            simd::setMode(simd::Mode::Scalar);
            RunOptions base;
            base.threads = 1;
            const LayerResult serial = sim.runLayer(w, base);
            simd::setMode(ambient);

            forEachSimdMode([&](const std::string &modeTag) {
                for (int threads : {1, 2, 8}) {
                    RunOptions opts;
                    opts.threads = threads;
                    expectLayerResultsBitIdentical(
                        serial, sim.runLayer(w, opts),
                        layer.name + (inputHalos ? "/ih" : "/oh") +
                            "/threads=" + std::to_string(threads) +
                            modeTag);
                }
            });
        }
    }
}

} // anonymous namespace
} // namespace scnn
