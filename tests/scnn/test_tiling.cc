/** @file Unit tests for spatial tiling, Kc selection and DRAM tiling. */

#include <gtest/gtest.h>

#include "scnn/tiling.hh"

namespace scnn {
namespace {

TEST(PartitionBounds, EvenSplit)
{
    const auto b = partitionBounds(8, 4);
    ASSERT_EQ(b.size(), 5u);
    EXPECT_EQ(b[0], 0);
    EXPECT_EQ(b[1], 2);
    EXPECT_EQ(b[4], 8);
}

TEST(PartitionBounds, UnevenSplitIsBalanced)
{
    const auto b = partitionBounds(10, 4);
    for (size_t i = 1; i < b.size(); ++i) {
        const int w = b[i] - b[i - 1];
        EXPECT_GE(w, 2);
        EXPECT_LE(w, 3);
    }
    EXPECT_EQ(b.back(), 10);
}

TEST(PartitionBounds, MorePartsThanElements)
{
    const auto b = partitionBounds(3, 8);
    EXPECT_EQ(b.back(), 3);
    int nonEmpty = 0;
    for (size_t i = 1; i < b.size(); ++i)
        nonEmpty += (b[i] > b[i - 1]);
    EXPECT_EQ(nonEmpty, 3); // exactly 3 PEs get a pixel column
}

TEST(SpatialTiling, InputTilesPartitionThePlane)
{
    const ConvLayerParams p = makeConv("t", 4, 8, 28, 3, 1, 0.5, 0.5);
    SpatialTiling t(p, 8, 8);
    long total = 0;
    for (int pr = 0; pr < 8; ++pr)
        for (int pc = 0; pc < 8; ++pc)
            total += t.inputTile(pr, pc).area();
    EXPECT_EQ(total, 28l * 28l);
}

TEST(SpatialTiling, OutputTilesPartitionThePlane)
{
    ConvLayerParams p = makeConv("t", 4, 8, 27, 5, 0, 0.5, 0.5);
    SpatialTiling t(p, 8, 8);
    long total = 0;
    for (int pr = 0; pr < 8; ++pr)
        for (int pc = 0; pc < 8; ++pc)
            total += t.outputTile(pr, pc).area();
    EXPECT_EQ(total,
              static_cast<long>(p.outWidth()) * p.outHeight());
}

TEST(SpatialTiling, AccumRectContainsHalo)
{
    // Stride-1 3x3 same conv: a PE's products reach R-1 = 2 columns
    // beyond its input tile on each side (clamped at plane edges).
    const ConvLayerParams p = makeConv("t", 4, 8, 32, 3, 1, 0.5, 0.5);
    SpatialTiling t(p, 4, 4);
    const TileRect in = t.inputTile(1, 1);   // interior PE
    const TileRect acc = t.accumRect(1, 1);
    EXPECT_EQ(acc.x0, in.x0 - 1); // pad 1: reaches one beyond
    EXPECT_EQ(acc.x1, in.x1 + 1);
    EXPECT_EQ(acc.y0, in.y0 - 1);
    EXPECT_EQ(acc.y1, in.y1 + 1);
}

TEST(SpatialTiling, AccumRectClampedAtEdges)
{
    const ConvLayerParams p = makeConv("t", 4, 8, 32, 3, 1, 0.5, 0.5);
    SpatialTiling t(p, 4, 4);
    const TileRect acc = t.accumRect(0, 0);
    EXPECT_EQ(acc.x0, 0);
    EXPECT_EQ(acc.y0, 0);
}

TEST(SpatialTiling, TinyPlaneLeavesIdlePes)
{
    // 7x7 plane on an 8x8 grid: exactly 49 PEs get one input pixel.
    const ConvLayerParams p = makeConv("t", 832, 384, 7, 1, 0, 0.4,
                                       0.35);
    SpatialTiling t(p, 8, 8);
    int active = 0;
    for (int pr = 0; pr < 8; ++pr)
        for (int pc = 0; pc < 8; ++pc)
            active += !t.inputTile(pr, pc).empty();
    EXPECT_EQ(active, 49);
    EXPECT_EQ(t.maxInputTileArea(), 1);
}

TEST(SpatialTiling, StridedAccumRect)
{
    // Stride-4 11x11 (AlexNet conv1): accumulator footprint of the
    // whole plane on one PE covers the full 55x55 output.
    ConvLayerParams p = makeConv("t", 3, 96, 227, 11, 0, 1.0, 1.0);
    p.strideX = p.strideY = 4;
    SpatialTiling t(p, 1, 1);
    const TileRect acc = t.accumRect(0, 0);
    EXPECT_EQ(acc.x0, 0);
    EXPECT_EQ(acc.x1, 55);
}

TEST(ChooseKc, PowerOfTwoAndCapacityBound)
{
    const AcceleratorConfig cfg = scnnConfig();
    ConvLayerParams p = makeConv("t", 64, 128, 28, 3, 1, 0.5, 0.5);
    SpatialTiling t(p, cfg.peRows, cfg.peCols);
    const int kc = chooseKc(p, cfg, t.maxAccumArea());
    // Capacity 32*32 = 1024 entries; footprint per channel =
    // (28/8+2)^2 = 36 -> Kc <= 28 -> 16; also power of two.
    EXPECT_EQ(kc & (kc - 1), 0);
    EXPECT_LE(static_cast<long>(kc) * t.maxAccumArea(), 1024l);
}

TEST(ChooseKc, CappedByBankEntries)
{
    const AcceleratorConfig cfg = scnnConfig();
    // 1x1 filter on a tiny plane: footprint 1, so capacity alone
    // would allow Kc = 1024; the bank-entry cap limits it to 32.
    const ConvLayerParams p = makeConv("t", 832, 384, 7, 1, 0, 0.4,
                                       0.35);
    SpatialTiling t(p, cfg.peRows, cfg.peCols);
    EXPECT_EQ(chooseKc(p, cfg, t.maxAccumArea()),
              cfg.pe.accumEntriesPerBank);
}

TEST(ChooseKc, KcCapOverrides)
{
    AcceleratorConfig cfg = scnnConfig();
    cfg.pe.kcCap = 8;
    const ConvLayerParams p = makeConv("t", 832, 384, 7, 1, 0, 0.4,
                                       0.35);
    SpatialTiling t(p, cfg.peRows, cfg.peCols);
    EXPECT_EQ(chooseKc(p, cfg, t.maxAccumArea()), 8);
}

TEST(ChooseKc, LargeTileForcesKcOne)
{
    const AcceleratorConfig cfg = scnnConfig();
    // VGG conv1_1-like: 224/8 = 28 wide tiles + halo -> ~900
    // positions; 2 * 900 > 1024 so Kc stays 1.
    const ConvLayerParams p = makeConv("t", 3, 64, 224, 3, 1, 0.6,
                                       1.0);
    SpatialTiling t(p, cfg.peRows, cfg.peCols);
    EXPECT_EQ(chooseKc(p, cfg, t.maxAccumArea()), 1);
}

TEST(ChooseKc, NeverExceedsK)
{
    const AcceleratorConfig cfg = scnnConfig();
    const ConvLayerParams p = makeConv("t", 8, 2, 7, 1, 0, 0.5, 0.5);
    SpatialTiling t(p, cfg.peRows, cfg.peCols);
    EXPECT_LE(chooseKc(p, cfg, t.maxAccumArea()), 2);
}

TEST(DramTiling, FitsWhenUnderCapacity)
{
    const AcceleratorConfig cfg = scnnConfig();
    const auto d = decideDramTiling(cfg, 1000, 1000);
    EXPECT_FALSE(d.tiled);
    EXPECT_EQ(d.numTiles, 1);
}

TEST(DramTiling, TilesWhenInputOverflows)
{
    const AcceleratorConfig cfg = scnnConfig();
    const uint64_t iaramBits = 10ull * 1024 * 8;
    const auto d = decideDramTiling(cfg, 3 * iaramBits, 0);
    EXPECT_TRUE(d.tiled);
    EXPECT_EQ(d.numTiles, 3);
}

TEST(DramTiling, TilesOnOutputOverflowToo)
{
    const AcceleratorConfig cfg = scnnConfig();
    const uint64_t oaramBits = 10ull * 1024 * 8;
    const auto d = decideDramTiling(cfg, 0, oaramBits + 1);
    EXPECT_TRUE(d.tiled);
    EXPECT_EQ(d.numTiles, 2);
}

} // anonymous namespace
} // namespace scnn
