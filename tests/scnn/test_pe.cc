/** @file Unit tests for the SCNN processing element. */

#include <gtest/gtest.h>

#include "nn/workload.hh"
#include "scnn/pe.hh"

namespace scnn {
namespace {

/** A 1-channel layer with hand-placed non-zeros. */
struct Fixture
{
    ConvLayerParams layer;
    Tensor3 acts;
    Tensor4 weights;

    Fixture()
        : layer(makeConv("pe_test", 1, 4, 8, 3, 1, 1.0, 1.0)),
          acts(1, 8, 8), weights(4, 1, 3, 3)
    {
    }
};

TEST(ProcessingElement, CountsVectorFetchesExactly)
{
    Fixture f;
    // 5 non-zero activations, 6 non-zero weights in group [0,4).
    f.acts.set(0, 1, 1, 1.0f);
    f.acts.set(0, 2, 2, 1.0f);
    f.acts.set(0, 3, 3, 1.0f);
    f.acts.set(0, 4, 4, 1.0f);
    f.acts.set(0, 5, 5, 1.0f);
    for (int i = 0; i < 6; ++i)
        f.weights.at(i % 4, 0, i / 4, i % 3) = 1.0f;

    const AcceleratorConfig cfg = scnnConfig(); // F = I = 4
    const ConvGeometry geom = f.layer.geometry();
    CompressedActTile tile(f.acts, 0, 8, 0, 8, geom);
    std::vector<CompressedWeightBlock> blocks;
    blocks.emplace_back(f.weights, 0, 4, 0, 1, 1, geom);

    ProcessingElement pe(cfg, f.layer, {0, 8, 0, 8}, {0, 8, 0, 8},
                         {0, 8, 0, 8});
    const PeGroupStats st = pe.runGroup(tile, blocks, 0, nullptr);

    // ceil(5/4) = 2 activation vectors x ceil(6/4) = 2 weight vectors
    // = 4 multiplier-array ops; products = 5 * 6 = 30.
    EXPECT_EQ(st.mulOps, 4u);
    EXPECT_EQ(st.products, 30u);
    EXPECT_EQ(st.actEntries, 5u);
    // Weights re-streamed once per activation vector: 2 x 6.
    EXPECT_EQ(st.wtEntries, 12u);
    EXPECT_GE(st.cycles, st.mulOps);
}

TEST(ProcessingElement, EdgeProductsBurnSlotsButDoNotLand)
{
    Fixture f;
    f.layer = makeConv("pe_edge", 1, 1, 8, 3, 0, 1.0, 1.0); // valid
    Tensor3 acts(1, 8, 8);
    acts.set(0, 0, 0, 1.0f); // corner: most taps fall outside
    Tensor4 w(1, 1, 3, 3, 1.0f);

    const ConvGeometry geom = f.layer.geometry();
    CompressedActTile tile(acts, 0, 8, 0, 8, geom);
    std::vector<CompressedWeightBlock> blocks;
    blocks.emplace_back(w, 0, 1, 0, 1, 1, geom);

    const AcceleratorConfig cfg = scnnConfig();
    ProcessingElement pe(cfg, f.layer, {0, 8, 0, 8}, {0, 6, 0, 6},
                         {0, 6, 0, 6});
    const PeGroupStats st = pe.runGroup(tile, blocks, 0, nullptr);
    EXPECT_EQ(st.products, 9u);
    // Input (0,0) with valid conv: only tap (0,0) lands in-plane.
    EXPECT_EQ(st.landed, 1u);
}

TEST(ProcessingElement, FunctionalAccumulationIsExact)
{
    Fixture f;
    f.acts.set(0, 3, 3, 2.0f);
    f.weights.at(1, 0, 1, 1) = 0.5f;

    const ConvGeometry geom = f.layer.geometry();
    CompressedActTile tile(f.acts, 0, 8, 0, 8, geom);
    std::vector<CompressedWeightBlock> blocks;
    blocks.emplace_back(f.weights, 0, 4, 0, 1, 1, geom);

    const AcceleratorConfig cfg = scnnConfig();
    ProcessingElement pe(cfg, f.layer, {0, 8, 0, 8}, {0, 8, 0, 8},
                         {0, 8, 0, 8});
    GroupAccum accum;
    accum.reset({0, 8, 0, 8}, 4);
    pe.runGroup(tile, blocks, 0, &accum);

    // out(k=1, x=3+1-1-... ) : ox = x + pad - r = 3 + 1 - 1 = 3.
    EXPECT_DOUBLE_EQ(accum.at(1, 3, 3), 1.0);
    double sum = 0.0;
    for (double v : accum.values)
        sum += v;
    EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST(ProcessingElement, EmptyTileDoesNothing)
{
    Fixture f;
    const ConvGeometry geom = f.layer.geometry();
    CompressedActTile tile(f.acts, 4, 4, 0, 8, geom); // empty
    std::vector<CompressedWeightBlock> blocks;
    blocks.emplace_back(f.weights, 0, 4, 0, 1, 1, geom);

    const AcceleratorConfig cfg = scnnConfig();
    ProcessingElement pe(cfg, f.layer, {4, 4, 0, 8}, {0, 0, 0, 0},
                         {0, 0, 0, 0});
    const PeGroupStats st = pe.runGroup(tile, blocks, 0, nullptr);
    EXPECT_EQ(st.cycles, 0u);
    EXPECT_EQ(st.products, 0u);
}

TEST(ProcessingElement, HaloAreaComputed)
{
    const ConvLayerParams layer =
        makeConv("halo", 1, 4, 16, 3, 1, 1.0, 1.0);
    const AcceleratorConfig cfg = scnnConfig();
    // Interior PE: own tile 4x4, accumulator 6x6 -> halo 20.
    ProcessingElement pe(cfg, layer, {4, 8, 4, 8}, {4, 8, 4, 8},
                         {3, 9, 3, 9});
    EXPECT_EQ(pe.overlapArea(), 16);
    EXPECT_EQ(pe.haloAreaPerChannel(), 36 - 16);
}

TEST(ProcessingElement, ConflictStallsIncreaseCycles)
{
    // Force every product of an op into the same bank by using a
    // single-bank configuration.
    AcceleratorConfig cfg = scnnConfig();
    cfg.pe.accumBanks = 1;

    const ConvLayerParams layer =
        makeConv("stall", 1, 4, 8, 1, 0, 1.0, 1.0);
    Tensor3 acts(1, 8, 8);
    acts.set(0, 0, 0, 1.0f);
    acts.set(0, 0, 1, 1.0f);
    Tensor4 w(4, 1, 1, 1, 1.0f);

    const ConvGeometry geom = layer.geometry();
    CompressedActTile tile(acts, 0, 8, 0, 8, geom);
    std::vector<CompressedWeightBlock> blocks;
    blocks.emplace_back(w, 0, 4, 0, 1, 1, geom);

    ProcessingElement pe(cfg, layer, {0, 8, 0, 8}, {0, 8, 0, 8},
                         {0, 8, 0, 8});
    const PeGroupStats st = pe.runGroup(tile, blocks, 0, nullptr);
    // One op with 8 products into one bank: the 4-entry crossbar
    // queue absorbs half; the array stalls for the remaining backlog
    // (8 - 4 = 4 cycles).
    EXPECT_EQ(st.mulOps, 1u);
    EXPECT_EQ(st.cycles, 8u - 4u);
    EXPECT_EQ(st.conflictStalls, 3u);
}

TEST(ProcessingElement, GroupOffsetSelectsChannels)
{
    Fixture f;
    f.acts.set(0, 4, 4, 1.0f);
    f.weights.at(2, 0, 1, 1) = 3.0f; // k = 2

    const ConvGeometry geom = f.layer.geometry();
    CompressedActTile tile(f.acts, 0, 8, 0, 8, geom);
    // Group [2, 4): block carries k=2 weight.
    std::vector<CompressedWeightBlock> blocks;
    blocks.emplace_back(f.weights, 2, 4, 0, 1, 1, geom);

    const AcceleratorConfig cfg = scnnConfig();
    ProcessingElement pe(cfg, f.layer, {0, 8, 0, 8}, {0, 8, 0, 8},
                         {0, 8, 0, 8});
    GroupAccum accum;
    accum.reset({0, 8, 0, 8}, 2);
    const PeGroupStats st = pe.runGroup(tile, blocks, 2, &accum);
    EXPECT_EQ(st.products, 1u);
    // kLocal = k - k0 = 2 - 2 = 0.
    EXPECT_DOUBLE_EQ(accum.at(0, 4, 4), 3.0);
}

} // anonymous namespace
} // namespace scnn
