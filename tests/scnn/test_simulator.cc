/** @file Unit tests for the layer-level SCNN simulator. */

#include <gtest/gtest.h>

#include "nn/model_zoo.hh"
#include "nn/workload.hh"
#include "scnn/simulator.hh"

namespace scnn {
namespace {

LayerWorkload
smallWorkload(double wd = 0.5, double ad = 0.5)
{
    const ConvLayerParams p =
        makeConv("sim_small", 16, 32, 24, 3, 1, wd, ad);
    return makeWorkload(p, 42);
}

TEST(ScnnSimulator, RequiresScnnConfig)
{
    EXPECT_DEATH(
        { ScnnSimulator sim(dcnnConfig()); (void)sim; },
        "SCNN configuration");
}

TEST(ScnnSimulator, BasicInvariants)
{
    ScnnSimulator sim(scnnConfig());
    const LayerResult r = sim.runLayer(smallWorkload());

    EXPECT_GT(r.cycles, 0u);
    EXPECT_GE(r.cycles, r.drainExposedCycles);
    EXPECT_GT(r.products, 0u);
    EXPECT_LE(r.landedProducts, r.products);
    EXPECT_GT(r.mulArrayOps, 0u);
    // At most F*I products per op.
    EXPECT_LE(r.products, r.mulArrayOps * 16u);
    EXPECT_GT(r.multUtilBusy, 0.0);
    EXPECT_LE(r.multUtilBusy, 1.0);
    EXPECT_LE(r.multUtilOverall, r.multUtilBusy + 1e-12);
    EXPECT_GE(r.peIdleFraction, 0.0);
    EXPECT_LT(r.peIdleFraction, 1.0);
    EXPECT_GT(r.energyPj, 0.0);
    EXPECT_EQ(r.archName, "SCNN");
}

TEST(ScnnSimulator, ProductsMatchNonZeroPairCount)
{
    // Every (non-zero weight, non-zero activation) same-channel,
    // phase-matched pair must be multiplied exactly once.
    const ConvLayerParams p =
        makeConv("pair_count", 4, 8, 10, 3, 1, 0.5, 0.5);
    const LayerWorkload w = makeWorkload(p, 3);

    uint64_t expected = 0;
    for (int c = 0; c < p.inChannels; ++c) {
        uint64_t actNz = 0;
        for (int x = 0; x < p.inWidth; ++x)
            for (int y = 0; y < p.inHeight; ++y)
                actNz += (w.input.get(c, x, y) != 0.0f);
        uint64_t wtNz = 0;
        for (int k = 0; k < p.outChannels; ++k)
            for (int r = 0; r < 3; ++r)
                for (int s = 0; s < 3; ++s)
                    wtNz += (w.weights.get(k, c, r, s) != 0.0f);
        expected += actNz * wtNz;
    }

    ScnnSimulator sim(scnnConfig());
    const LayerResult res = sim.runLayer(w);
    EXPECT_EQ(res.products, expected);
}

TEST(ScnnSimulator, DenseMacsEqualsLayerMacs)
{
    ScnnSimulator sim(scnnConfig());
    const LayerWorkload w = smallWorkload();
    EXPECT_EQ(sim.runLayer(w).denseMacs, w.layer.macs());
}

TEST(ScnnSimulator, CyclesDecreaseWithSparsity)
{
    ScnnSimulator sim(scnnConfig());
    const LayerResult dense = sim.runLayer(smallWorkload(1.0, 1.0));
    const LayerResult mid = sim.runLayer(smallWorkload(0.5, 0.5));
    const LayerResult sparse = sim.runLayer(smallWorkload(0.2, 0.2));
    EXPECT_GT(dense.cycles, mid.cycles);
    EXPECT_GT(mid.cycles, sparse.cycles);
}

TEST(ScnnSimulator, FirstLayerChargesActDram)
{
    ScnnSimulator sim(scnnConfig());
    const LayerWorkload w = smallWorkload();
    RunOptions first;
    first.firstLayer = true;
    const LayerResult a = sim.runLayer(w, first);
    const LayerResult b = sim.runLayer(w);
    EXPECT_GT(a.dramActBits, b.dramActBits);
    EXPECT_GT(a.energyPj, b.energyPj);
    // Same compute either way.
    EXPECT_EQ(a.products, b.products);
}

TEST(ScnnSimulator, WeightDramIsCompressed)
{
    ScnnSimulator sim(scnnConfig());
    const LayerWorkload w = smallWorkload(0.3, 0.5);
    const LayerResult r = sim.runLayer(w);
    // Compressed weights must cost less than dense 16-bit streaming
    // at 30% density (20 bits per stored element).
    const uint64_t denseBits = w.layer.weightCount() * 16;
    EXPECT_LT(r.dramWeightBits, denseBits);
    EXPECT_GT(r.dramWeightBits, 0u);
}

TEST(ScnnSimulator, SmallLayerFitsOnChip)
{
    ScnnSimulator sim(scnnConfig());
    const LayerResult r = sim.runLayer(smallWorkload());
    EXPECT_FALSE(r.dramTiled);
    EXPECT_EQ(r.numDramTiles, 1);
}

TEST(ScnnSimulator, HugeLayerTilesThroughDram)
{
    // VGG conv1_2-like: 64 x 224 x 224 activations at ~50% density
    // cannot fit 1 MB of compressed RAM.
    const ConvLayerParams p =
        makeConv("huge", 64, 64, 224, 3, 1, 0.22, 0.52);
    const LayerWorkload w = makeWorkload(p, 1);
    ScnnSimulator sim(scnnConfig());
    const LayerResult r = sim.runLayer(w);
    EXPECT_TRUE(r.dramTiled);
    EXPECT_GT(r.numDramTiles, 1);
    EXPECT_GT(r.dramActBits, 0u);
}

TEST(ScnnSimulator, UtilizationDropsOnTinyPlanes)
{
    // 7x7 plane spread over 64 PEs starves the multiplier array
    // (Fig. 9: IC_5b below ~25%).
    const ConvLayerParams tiny =
        makeConv("tiny_plane", 256, 128, 7, 1, 0, 0.4, 0.35);
    const ConvLayerParams fat =
        makeConv("fat_plane", 256, 128, 56, 3, 1, 0.4, 0.35);
    ScnnSimulator sim(scnnConfig());
    const LayerResult a = sim.runLayer(makeWorkload(tiny, 2));
    const LayerResult b = sim.runLayer(makeWorkload(fat, 2));
    EXPECT_LT(a.multUtilBusy, 0.3);
    EXPECT_GT(b.multUtilBusy, a.multUtilBusy);
}

TEST(ScnnSimulator, StatsArePopulated)
{
    ScnnSimulator sim(scnnConfig());
    const LayerResult r = sim.runLayer(smallWorkload());
    for (const char *key :
         {"kc", "num_groups", "conflict_stall_cycles",
          "act_entries_fetched", "wt_entries_fetched",
          "in_stored_elements", "out_stored_elements"}) {
        EXPECT_TRUE(r.stats.has(key)) << key;
    }
    EXPECT_GE(r.stats.get("kc"), 1.0);
}

TEST(ScnnSimulator, EnergyEventsConsistent)
{
    ScnnSimulator sim(scnnConfig());
    const LayerResult r = sim.runLayer(smallWorkload());
    EXPECT_DOUBLE_EQ(r.events.mults,
                     static_cast<double>(r.products));
    EXPECT_DOUBLE_EQ(r.events.xbarTransfers,
                     static_cast<double>(r.landedProducts));
    // Accumulations plus the PPU's dense drain pass.
    EXPECT_GE(r.events.accBankAccesses,
              static_cast<double>(r.landedProducts));
    EXPECT_LE(r.events.accBankAccesses,
              static_cast<double>(r.landedProducts) +
                  static_cast<double>(r.denseMacs));
    EXPECT_GT(r.events.iaramReadBits, 0.0);
    EXPECT_GT(r.events.wfifoReadBits, 0.0);
    EXPECT_GT(r.events.oaramWriteBits, 0.0);
}

TEST(ScnnSimulator, RunNetworkCoversEvalLayers)
{
    ScnnSimulator sim(scnnConfig());
    const NetworkResult nr = sim.runNetwork(tinyTestNetwork(), 7);
    EXPECT_EQ(nr.layers.size(), tinyTestNetwork().numEvalLayers());
    EXPECT_GT(nr.totalCycles(), 0u);
    EXPECT_GT(nr.totalEnergyPj(), 0.0);
    EXPECT_EQ(nr.archName, "SCNN");
}

TEST(ScnnSimulator, DeterministicAcrossRuns)
{
    ScnnSimulator sim(scnnConfig());
    const LayerWorkload w = smallWorkload();
    const LayerResult a = sim.runLayer(w);
    const LayerResult b = sim.runLayer(w);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.products, b.products);
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
}

TEST(ScnnSimulator, MoreBanksNeverSlower)
{
    AcceleratorConfig few = scnnConfig();
    few.pe.accumBanks = 8;
    AcceleratorConfig many = scnnConfig();
    many.pe.accumBanks = 128;
    const LayerWorkload w = smallWorkload(0.8, 0.8);
    const uint64_t cyclesFew =
        ScnnSimulator(few).runLayer(w).cycles;
    const uint64_t cyclesMany =
        ScnnSimulator(many).runLayer(w).cycles;
    EXPECT_GE(cyclesFew, cyclesMany);
}

} // anonymous namespace
} // namespace scnn
