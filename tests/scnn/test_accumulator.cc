/** @file Unit tests for the queued banked-accumulator model. */

#include <gtest/gtest.h>

#include "scnn/accumulator.hh"

namespace scnn {
namespace {

TEST(AccumulatorBanks, NoProductsCostsOneCycle)
{
    AccumulatorBanks banks(32);
    banks.beginOp();
    EXPECT_EQ(banks.finishOp(), 1u);
    EXPECT_EQ(banks.now(), 1u);
}

TEST(AccumulatorBanks, DistinctBanksNoStall)
{
    AccumulatorBanks banks(32);
    banks.beginOp();
    for (int b = 0; b < 16; ++b)
        banks.route(b);
    EXPECT_EQ(banks.finishOp(), 1u);
}

TEST(AccumulatorBanks, QueuesAbsorbShortBursts)
{
    // 3 same-bank products with queue depth 4: no stall on the first
    // op; sustained repetition must converge to ~3 cycles/op (bank
    // throughput bound).
    AccumulatorBanks banks(32, 8, 4);
    banks.beginOp();
    banks.route(5);
    banks.route(5);
    banks.route(5);
    EXPECT_EQ(banks.finishOp(), 1u);

    uint64_t total = 1;
    for (int op = 0; op < 20; ++op) {
        banks.beginOp();
        banks.route(5);
        banks.route(5);
        banks.route(5);
        total += banks.finishOp();
    }
    // 21 ops x 3 products = 63 products into one bank at 1/cycle,
    // minus the queue depth that is still in flight at the end.
    EXPECT_GE(total, 63u - 4u);
    EXPECT_LE(total, 63u);
}

TEST(AccumulatorBanks, SustainedWorstCaseIsThroughputBound)
{
    AccumulatorBanks banks(32, 8, 4);
    uint64_t total = 0;
    for (int op = 0; op < 50; ++op) {
        banks.beginOp();
        for (int i = 0; i < 16; ++i)
            banks.route(9);
        total += banks.finishOp();
    }
    // 800 products through one bank: ~16 cycles per op.
    EXPECT_GE(total, 800u - 4u);
}

TEST(AccumulatorBanks, HalfLoadNeverStallsWhenSpread)
{
    // 16 products over 32 distinct banks every op: sustained half
    // load, zero stalls.
    AccumulatorBanks banks(32, 8, 4);
    uint64_t total = 0;
    for (int op = 0; op < 100; ++op) {
        banks.beginOp();
        for (int i = 0; i < 16; ++i)
            banks.route((op + 2 * i) % 32);
        total += banks.finishOp();
    }
    EXPECT_EQ(total, 100u);
}

TEST(AccumulatorBanks, ResetClearsClockAndQueues)
{
    AccumulatorBanks banks(4, 8, 2);
    banks.beginOp();
    for (int i = 0; i < 8; ++i)
        banks.route(0);
    banks.finishOp();
    EXPECT_GT(banks.now(), 1u);
    banks.reset();
    EXPECT_EQ(banks.now(), 0u);
    banks.beginOp();
    banks.route(0);
    EXPECT_EQ(banks.finishOp(), 1u);
}

TEST(AccumulatorBanks, BankOfInterleavesConsecutivePositions)
{
    AccumulatorBanks banks(32);
    const int accH = 10;
    std::vector<int> seen;
    for (int y = 0; y < 8; ++y)
        seen.push_back(banks.bankOf(0, 0, y, accH));
    for (size_t i = 1; i < seen.size(); ++i)
        EXPECT_NE(seen[i], seen[i - 1]);
}

TEST(AccumulatorBanks, DenseOpMapsToDistinctBanks)
{
    // The structured dense case: I = 4 consecutive positions x F = 4
    // consecutive channels with stride 2*I = 8 -> 16 distinct banks.
    AccumulatorBanks banks(32, 8);
    std::vector<bool> used(32, false);
    for (int k = 0; k < 4; ++k) {
        for (int y = 0; y < 4; ++y) {
            const int b = banks.bankOf(k, 0, y, 16);
            EXPECT_FALSE(used[b]) << "k=" << k << " y=" << y;
            used[b] = true;
        }
    }
}

TEST(AccumulatorBanks, BankInRange)
{
    AccumulatorBanks banks(32);
    for (int k = 0; k < 32; ++k)
        for (int x = 0; x < 9; ++x)
            for (int y = 0; y < 9; ++y) {
                const int b = banks.bankOf(k, x, y, 9);
                EXPECT_GE(b, 0);
                EXPECT_LT(b, 32);
            }
}

TEST(AccumulatorBanks, CostHistogramRecordsOps)
{
    AccumulatorBanks banks(16, 8, 1);
    banks.beginOp();
    banks.route(1);
    banks.route(1);
    banks.route(1);
    banks.finishOp(); // queue depth 1: cost 2
    banks.beginOp();
    banks.route(2);
    banks.finishOp();
    EXPECT_EQ(banks.costHistogram().totalSamples(), 2u);
    EXPECT_GT(banks.costHistogram().mean(), 1.0);
}

} // anonymous namespace
} // namespace scnn
