/**
 * @file
 * Memory-system behaviour of the SCNN simulator: DRAM bandwidth
 * bounds, weight-broadcast accounting, IARAM group re-reads, OARAM
 * hints, and tiling traffic.
 */

#include <gtest/gtest.h>

#include "nn/workload.hh"
#include "scnn/simulator.hh"
#include "tensor/sparse_block.hh"

namespace scnn {
namespace {

LayerWorkload
smallWorkload()
{
    const ConvLayerParams p =
        makeConv("mem_small", 16, 32, 24, 3, 1, 0.5, 0.5);
    return makeWorkload(p, 42);
}

TEST(ScnnMemory, DramBandwidthBoundsLayerCycles)
{
    // Starve DRAM bandwidth: the layer becomes weight-stream bound
    // and cycles must rise accordingly.
    AcceleratorConfig slow = scnnConfig();
    slow.dramBitsPerCycle = 4;
    const LayerWorkload w = smallWorkload();
    const LayerResult fast =
        ScnnSimulator(scnnConfig()).runLayer(w);
    const LayerResult bound = ScnnSimulator(slow).runLayer(w);
    EXPECT_GT(bound.cycles, fast.cycles);
    // The bound is exactly weight bits / bandwidth when binding.
    EXPECT_GE(bound.cycles, bound.dramWeightBits / 4);
}

TEST(ScnnMemory, WeightDramMatchesRleAccounting)
{
    // Weight DRAM bits = stored elements of the per-(group, channel)
    // blocks x 20 bits; for a single group this equals the
    // whole-tensor accounting.
    ConvLayerParams p = makeConv("mem_wt", 4, 8, 10, 3, 1, 0.5, 0.5);
    const LayerWorkload w = makeWorkload(p, 7);
    const LayerResult r = ScnnSimulator(scnnConfig()).runLayer(w);

    // Reconstruct: blocks at the simulator's chosen Kc.
    const int kc = static_cast<int>(r.stats.get("kc"));
    uint64_t stored = 0;
    const ConvGeometry geom = p.geometry();
    for (int k0 = 0; k0 < p.outChannels; k0 += kc) {
        const int k1 = std::min(p.outChannels, k0 + kc);
        for (int c = 0; c < p.inChannels; ++c) {
            CompressedWeightBlock block(w.weights, k0, k1, c,
                                        p.inChannels, 1, geom);
            stored += block.storedElements();
        }
    }
    EXPECT_EQ(r.dramWeightBits, stored * 20);
}

TEST(ScnnMemory, IaramRereadScalesWithGroups)
{
    // Doubling K doubles the number of output-channel groups (fixed
    // Kc), and the input streams are re-read once per group.
    ConvLayerParams narrow =
        makeConv("mem_k32", 16, 32, 24, 3, 1, 0.5, 0.5);
    ConvLayerParams wide =
        makeConv("mem_k64", 16, 64, 24, 3, 1, 0.5, 0.5);
    ScnnSimulator sim(scnnConfig());
    const LayerResult a = sim.runLayer(makeWorkload(narrow, 3));
    const LayerResult b = sim.runLayer(makeWorkload(wide, 3));
    EXPECT_NEAR(b.events.iaramReadBits / a.events.iaramReadBits, 2.0,
                0.1);
}

TEST(ScnnMemory, OutputHintDrivesOaramAccounting)
{
    const LayerWorkload w = smallWorkload();
    ScnnSimulator sim(scnnConfig());
    RunOptions sparseOut;
    sparseOut.outputDensityHint = 0.2;
    RunOptions denseOut;
    denseOut.outputDensityHint = 0.9;
    const LayerResult a = sim.runLayer(w, sparseOut);
    const LayerResult b = sim.runLayer(w, denseOut);
    EXPECT_LT(a.events.oaramWriteBits, b.events.oaramWriteBits);
    // Timing is unaffected by the hint for an on-chip layer.
    EXPECT_EQ(a.cycles, b.cycles);
}

TEST(ScnnMemory, TiledLayerChargesActTraffic)
{
    const ConvLayerParams p =
        makeConv("mem_big", 64, 64, 224, 3, 1, 0.22, 0.52);
    const LayerWorkload w = makeWorkload(p, 1);
    const LayerResult r = ScnnSimulator(scnnConfig()).runLayer(w);
    ASSERT_TRUE(r.dramTiled);
    // Act traffic at least the compressed input once.
    const double inStored = r.stats.get("in_stored_elements");
    EXPECT_GE(static_cast<double>(r.dramActBits), inStored * 20.0);
    // Weights re-broadcast per tile.
    EXPECT_GT(r.numDramTiles, 1);
}

TEST(ScnnMemory, HaloBitsScaleWithFilterSize)
{
    // Bigger filters widen the accumulator halo.
    ConvLayerParams small =
        makeConv("mem_f3", 16, 16, 32, 3, 1, 0.5, 0.5);
    ConvLayerParams big =
        makeConv("mem_f5", 16, 16, 32, 5, 2, 0.5, 0.5);
    ScnnSimulator sim(scnnConfig());
    const LayerResult a = sim.runLayer(makeWorkload(small, 3));
    const LayerResult b = sim.runLayer(makeWorkload(big, 3));
    EXPECT_GT(b.events.haloBits, a.events.haloBits);
}

TEST(ScnnMemory, EnergyBreakdownKeysStable)
{
    const LayerResult r =
        ScnnSimulator(scnnConfig()).runLayer(smallWorkload());
    const EnergyModel energy;
    const auto bd = energy.breakdown(r.events, scnnConfig());
    for (const char *key : {"alu", "scatter_accum", "act_ram",
                            "weight_fifo", "dram", "halo", "ppu"}) {
        ASSERT_TRUE(bd.count(key)) << key;
    }
    EXPECT_GT(bd.at("scatter_accum"), 0.0);
    EXPECT_GT(bd.at("act_ram"), 0.0);
}

} // anonymous namespace
} // namespace scnn
