/** @file Unit tests for the dense DCNN / DCNN-opt simulators. */

#include <gtest/gtest.h>

#include "dcnn/simulator.hh"
#include "nn/model_zoo.hh"
#include "nn/workload.hh"

namespace scnn {
namespace {

LayerWorkload
smallWorkload(double wd = 0.5, double ad = 0.5)
{
    const ConvLayerParams p =
        makeConv("dcnn_small", 16, 32, 24, 3, 1, wd, ad);
    return makeWorkload(p, 42);
}

TEST(DcnnSimulator, RequiresDenseConfig)
{
    EXPECT_DEATH(
        { DcnnSimulator sim(scnnConfig()); (void)sim; },
        "dense configuration");
}

TEST(DcnnSimulator, CyclesMatchClosedForm)
{
    // 24x24 output plane over an 8x8 grid: each PE owns a 3x3 tile;
    // per output pixel and channel: ceil(16*3*3/16) = 9 chunks.
    DcnnSimulator sim(dcnnConfig());
    const LayerWorkload w = smallWorkload();
    const LayerResult r = sim.runLayer(w);
    EXPECT_EQ(r.computeCycles, 9ull * 32ull * 9ull);
}

TEST(DcnnSimulator, CyclesIndependentOfDensity)
{
    DcnnSimulator sim(dcnnConfig());
    const LayerResult dense = sim.runLayer(smallWorkload(1.0, 1.0));
    const LayerResult sparse = sim.runLayer(smallWorkload(0.2, 0.2));
    EXPECT_EQ(dense.cycles, sparse.cycles);
}

TEST(DcnnSimulator, OptHasSameCyclesLowerEnergy)
{
    // Section VI-A: "the energy optimizations over DCNN do not affect
    // performance".
    DcnnSimulator dcnn(dcnnConfig());
    DcnnSimulator opt(dcnnOptConfig());
    const LayerWorkload w = smallWorkload(0.4, 0.4);
    const LayerResult a = dcnn.runLayer(w);
    const LayerResult b = opt.runLayer(w);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_LT(b.energyPj, a.energyPj);
}

TEST(DcnnSimulator, OptGatingScalesWithDensity)
{
    DcnnSimulator opt(dcnnOptConfig());
    const LayerResult sparse = opt.runLayer(smallWorkload(0.2, 0.2));
    const LayerResult dense = opt.runLayer(smallWorkload(1.0, 1.0));
    EXPECT_LT(sparse.events.mults, dense.events.mults);
    EXPECT_GT(sparse.events.gatedMults, dense.events.gatedMults);
    EXPECT_LT(sparse.energyPj, dense.energyPj);
}

TEST(DcnnSimulator, UtilizationReflectsReductionPadding)
{
    // CRS = 16*9 = 144 divides 16 exactly: busy utilization 1.0 on
    // evenly divisible tiles.
    DcnnSimulator sim(dcnnConfig());
    const LayerResult r = sim.runLayer(smallWorkload());
    EXPECT_NEAR(r.multUtilBusy, 1.0, 1e-9);

    // CRS = 3*9 = 27 -> ceil 2 chunks of 16 = 32 slots: util 27/32.
    const ConvLayerParams odd =
        makeConv("odd", 3, 8, 24, 3, 1, 1.0, 1.0);
    const LayerResult ro = sim.runLayer(makeWorkload(odd, 1));
    EXPECT_NEAR(ro.multUtilBusy, 27.0 / 32.0, 1e-9);
}

TEST(DcnnSimulator, SmallLayerStaysOnChip)
{
    DcnnSimulator sim(dcnnConfig());
    const LayerResult r = sim.runLayer(smallWorkload());
    EXPECT_FALSE(r.dramTiled);
    EXPECT_EQ(r.dramActBits, 0u);
}

TEST(DcnnSimulator, VggSizedLayerTiles)
{
    const ConvLayerParams p =
        makeConv("vgg1_2", 64, 64, 224, 3, 1, 0.22, 0.52);
    DcnnSimulator dcnn(dcnnConfig());
    DcnnSimulator opt(dcnnOptConfig());
    const LayerWorkload w = makeWorkload(p, 1);
    const LayerResult a = dcnn.runLayer(w);
    const LayerResult b = opt.runLayer(w);
    EXPECT_TRUE(a.dramTiled);
    // DCNN-opt compresses DRAM activation traffic.
    EXPECT_LT(b.dramActBits, a.dramActBits);
}

TEST(DcnnSimulator, WeightDramIsDense)
{
    DcnnSimulator sim(dcnnConfig());
    const LayerWorkload w = smallWorkload(0.3, 0.5);
    const LayerResult r = sim.runLayer(w);
    EXPECT_EQ(r.dramWeightBits, w.layer.weightCount() * 16);
}

TEST(DcnnSimulator, FirstLayerStreamsInput)
{
    DcnnSimulator sim(dcnnConfig());
    const LayerWorkload w = smallWorkload();
    DcnnRunOptions first;
    first.firstLayer = true;
    const LayerResult a = sim.runLayer(w, first);
    const LayerResult b = sim.runLayer(w);
    EXPECT_EQ(a.dramActBits - b.dramActBits,
              w.layer.inputCount() * 16);
}

TEST(DcnnSimulator, GroupedConvReducesWork)
{
    ConvLayerParams grouped =
        makeConv("grp", 16, 32, 24, 3, 1, 0.5, 0.5);
    grouped.groups = 2;
    grouped.validate();
    DcnnSimulator sim(dcnnConfig());
    const LayerResult g = sim.runLayer(makeWorkload(grouped, 2));
    const LayerResult f = sim.runLayer(smallWorkload());
    EXPECT_LT(g.computeCycles, f.computeCycles);
}

TEST(DcnnSimulator, RunNetworkUsesHints)
{
    DcnnSimulator sim(dcnnOptConfig());
    const NetworkResult nr =
        sim.runNetwork(tinyTestNetwork(), 3, true, false);
    EXPECT_EQ(nr.layers.size(), tinyTestNetwork().numEvalLayers());
    EXPECT_GT(nr.totalCycles(), 0u);
}

TEST(ValidTapFraction, OneWithoutPadding)
{
    const ConvLayerParams p = makeConv("v", 1, 1, 8, 3, 0, 1.0, 1.0);
    EXPECT_DOUBLE_EQ(validTapFraction(p), 1.0);
}

TEST(ValidTapFraction, BelowOneWithPadding)
{
    const ConvLayerParams p = makeConv("v", 1, 1, 8, 3, 1, 1.0, 1.0);
    const double f = validTapFraction(p);
    EXPECT_LT(f, 1.0);
    EXPECT_GT(f, 0.8);
}

} // anonymous namespace
} // namespace scnn
