/** @file Unit tests for the event-based energy model. */

#include <gtest/gtest.h>

#include "arch/energy_model.hh"

namespace scnn {
namespace {

TEST(EnergyEvents, AccumulateAndScale)
{
    EnergyEvents a;
    a.mults = 10;
    a.dramBits = 100;
    EnergyEvents b;
    b.mults = 5;
    b.iaramReadBits = 7;
    a += b;
    EXPECT_DOUBLE_EQ(a.mults, 15.0);
    EXPECT_DOUBLE_EQ(a.iaramReadBits, 7.0);
    a.scale(2.0);
    EXPECT_DOUBLE_EQ(a.mults, 30.0);
    EXPECT_DOUBLE_EQ(a.dramBits, 200.0);
}

TEST(EnergyModel, ZeroEventsZeroEnergy)
{
    const EnergyModel m;
    EXPECT_DOUBLE_EQ(m.total(EnergyEvents{}, scnnConfig()), 0.0);
}

TEST(EnergyModel, MultsCostMultPj)
{
    EnergyModel m;
    EnergyEvents ev;
    ev.mults = 1000;
    EXPECT_NEAR(m.total(ev, scnnConfig()), 1000 * m.multPj, 1e-9);
}

TEST(EnergyModel, CostOrderingPreserved)
{
    // The ordering DRAM >> large SRAM >> small SRAM >> gated ALU must
    // hold per bit/event: it drives every conclusion in the paper.
    const EnergyModel m;
    EXPECT_GT(m.dramPjPerBit, m.sram2MPjPerBit);
    EXPECT_GT(m.sram2MPjPerBit, m.sram10KPjPerBit);
    EXPECT_GT(m.sram10KPjPerBit, m.smallBufPjPerBit);
    EXPECT_GT(m.multPj, m.gatedMultPj);
}

TEST(EnergyModel, SramPjPerBitInterpolatesMonotonically)
{
    const EnergyModel m;
    double prev = 0.0;
    for (uint64_t kb : {1, 2, 10, 16, 32, 256, 2048, 8192}) {
        const double pj = m.sramPjPerBit(kb * 1024);
        EXPECT_GE(pj, prev) << kb;
        prev = pj;
    }
    EXPECT_NEAR(m.sramPjPerBit(10 * 1024), m.sram10KPjPerBit, 1e-12);
    EXPECT_NEAR(m.sramPjPerBit(2048 * 1024), m.sram2MPjPerBit, 1e-12);
}

TEST(EnergyModel, BreakdownSumsToTotal)
{
    const EnergyModel m;
    EnergyEvents ev;
    ev.mults = 100;
    ev.accBankAccesses = 50;
    ev.xbarTransfers = 50;
    ev.iaramReadBits = 2000;
    ev.dramBits = 300;
    ev.haloBits = 10;
    ev.ppuElements = 5;
    const auto bd = m.breakdown(ev, scnnConfig());
    double sum = 0.0;
    for (const auto &[k, v] : bd)
        sum += v;
    EXPECT_NEAR(sum, m.total(ev, scnnConfig()), 1e-9);
    EXPECT_GT(bd.at("alu"), 0.0);
    EXPECT_GT(bd.at("scatter_accum"), 0.0);
    EXPECT_GT(bd.at("dram"), 0.0);
}

TEST(EnergyModel, DcnnEventsUseDenseSramCost)
{
    const EnergyModel m;
    EnergyEvents ev;
    ev.denseSramReadBits = 1e6;
    const double pj = m.total(ev, dcnnConfig());
    EXPECT_NEAR(pj, 1e6 * m.sramPjPerBit(2 * 1024 * 1024), 1e-6);
}

TEST(EnergyModel, ScnnPerMacCostExceedsDcnnPerMac)
{
    // Section VI-A: at full density SCNN is notably less energy
    // efficient per multiply because of the crossbar and distributed
    // accumulator overheads.
    const EnergyModel m;
    EnergyEvents scnnMac;
    scnnMac.mults = 1;
    scnnMac.coordComputes = 1;
    scnnMac.xbarTransfers = 1;
    scnnMac.accBankAccesses = 1;
    EnergyEvents dcnnMac;
    dcnnMac.mults = 1;
    dcnnMac.adds = 1;
    EXPECT_GT(m.total(scnnMac, scnnConfig()),
              m.total(dcnnMac, dcnnConfig()));
}

} // anonymous namespace
} // namespace scnn
