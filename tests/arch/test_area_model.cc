/** @file Area-model tests against the paper's Tables III and IV. */

#include <gtest/gtest.h>

#include "arch/area_model.hh"

namespace scnn {
namespace {

TEST(AreaModel, TableThreePeBreakdown)
{
    const AreaModel m;
    const AreaBreakdown pe = m.peArea(scnnConfig());

    EXPECT_NEAR(pe.components.at("iaram_oaram"), 0.031, 0.002);
    EXPECT_NEAR(pe.components.at("weight_fifo"), 0.004, 0.001);
    EXPECT_NEAR(pe.components.at("multiplier_array"), 0.008, 0.001);
    EXPECT_NEAR(pe.components.at("scatter_network"), 0.026, 0.002);
    EXPECT_NEAR(pe.components.at("accumulator_buffers"), 0.036,
                0.003);
    EXPECT_NEAR(pe.components.at("other"), 0.019, 0.002);
    EXPECT_NEAR(pe.total(), 0.123, 0.01);
}

TEST(AreaModel, TableFourChipTotals)
{
    const AreaModel m;
    EXPECT_NEAR(m.chipArea(scnnConfig()).total(), 7.9, 0.4);
    EXPECT_NEAR(m.chipArea(dcnnConfig()).total(), 5.9, 0.6);
    EXPECT_NEAR(m.chipArea(dcnnOptConfig()).total(), 5.9, 0.6);
}

TEST(AreaModel, ScnnLargerThanDcnn)
{
    // "somewhat larger than an equivalently provisioned dense
    // accelerator due to the overheads of managing the sparse
    // dataflow" (Section I).
    const AreaModel m;
    EXPECT_GT(m.chipArea(scnnConfig()).total(),
              m.chipArea(dcnnConfig()).total());
}

TEST(AreaModel, MemoriesDominateScnnPe)
{
    // Section IV: memories consume ~57% of PE area, multipliers ~6%.
    const AreaModel m;
    const AreaBreakdown pe = m.peArea(scnnConfig());
    const double mem = pe.components.at("iaram_oaram") +
                       pe.components.at("accumulator_buffers") +
                       pe.components.at("weight_fifo");
    EXPECT_NEAR(mem / pe.total(), 0.57, 0.06);
    EXPECT_NEAR(pe.components.at("multiplier_array") / pe.total(),
                0.06, 0.02);
}

TEST(AreaModel, AccumulatorBytesMatchTableThree)
{
    // 32 banks x 32 entries x 24-bit, double buffered = 6 KB.
    EXPECT_EQ(AreaModel::accumulatorBytes(scnnConfig().pe), 6u * 1024u);
}

TEST(AreaModel, ScalesWithMultiplierArray)
{
    AreaModel m;
    AcceleratorConfig big = scnnConfig();
    big.pe.mulF = 8;
    big.pe.mulI = 8;
    const double base =
        m.peArea(scnnConfig()).components.at("multiplier_array");
    const double grown =
        m.peArea(big).components.at("multiplier_array");
    EXPECT_NEAR(grown / base, 4.0, 1e-9);
}

TEST(AreaModel, CrossbarScalesWithPorts)
{
    AreaModel m;
    AcceleratorConfig wide = scnnConfig();
    wide.pe.accumBanks = 64;
    EXPECT_NEAR(m.peArea(wide).components.at("scatter_network"),
                2.0 * m.peArea(scnnConfig())
                          .components.at("scatter_network"),
                1e-9);
}

TEST(AreaModel, DensePeHasNoScatterNetwork)
{
    const AreaModel m;
    const AreaBreakdown pe = m.peArea(dcnnConfig());
    EXPECT_EQ(pe.components.count("scatter_network"), 0u);
    EXPECT_GT(pe.components.at("multiplier_array"), 0.0);
}

} // anonymous namespace
} // namespace scnn
