/** @file Unit tests for accelerator configurations (Tables II/IV). */

#include <gtest/gtest.h>

#include "arch/config.hh"

namespace scnn {
namespace {

TEST(ScnnConfig, MatchesTableTwo)
{
    const AcceleratorConfig cfg = scnnConfig();
    EXPECT_EQ(cfg.kind, ArchKind::SCNN);
    EXPECT_EQ(cfg.numPes(), 64);
    EXPECT_EQ(cfg.pe.mulF, 4);
    EXPECT_EQ(cfg.pe.mulI, 4);
    EXPECT_EQ(cfg.multipliers(), 1024);
    EXPECT_EQ(cfg.pe.accumBanks, 32); // A = 2 * F * I
    EXPECT_EQ(cfg.pe.accumEntriesPerBank, 32);
    EXPECT_EQ(cfg.pe.iaramBytes, 10 * 1024);
    EXPECT_EQ(cfg.pe.oaramBytes, 10 * 1024);
    EXPECT_EQ(cfg.pe.weightFifoBytes, 500);
    // 1.25 MB of activation RAM chip-wide (data + indices).
    EXPECT_EQ(cfg.activationSramBytes(), 64u * 20u * 1024u);
}

TEST(DcnnConfig, MatchesTableFour)
{
    const AcceleratorConfig cfg = dcnnConfig();
    EXPECT_EQ(cfg.kind, ArchKind::DCNN);
    EXPECT_EQ(cfg.numPes(), 64);
    EXPECT_EQ(cfg.pe.dotWidth, 16);
    EXPECT_EQ(cfg.multipliers(), 1024);
    EXPECT_EQ(cfg.activationSramBytes(), 2u * 1024u * 1024u);
}

TEST(DcnnOptConfig, SameProvisioningAsDcnn)
{
    const AcceleratorConfig opt = dcnnOptConfig();
    const AcceleratorConfig base = dcnnConfig();
    EXPECT_EQ(opt.kind, ArchKind::DCNN_OPT);
    EXPECT_EQ(opt.multipliers(), base.multipliers());
    EXPECT_EQ(opt.activationSramBytes(), base.activationSramBytes());
}

TEST(ArchKindName, Printable)
{
    EXPECT_STREQ(archKindName(ArchKind::SCNN), "SCNN");
    EXPECT_STREQ(archKindName(ArchKind::DCNN), "DCNN");
    EXPECT_STREQ(archKindName(ArchKind::DCNN_OPT), "DCNN-opt");
}

TEST(PeGrid, PreservesMultiplierCount)
{
    for (auto [r, c] : {std::pair{2, 2}, {2, 4}, {4, 4}, {4, 8},
                        {8, 8}, {16, 8}}) {
        const AcceleratorConfig cfg = scnnWithPeGrid(r, c);
        EXPECT_EQ(cfg.multipliers(), 1024) << r << "x" << c;
        EXPECT_EQ(cfg.numPes(), r * c);
        // Banking stays at 2x the array size.
        EXPECT_EQ(cfg.pe.accumBanks, 2 * cfg.pe.multipliers());
    }
}

TEST(PeGrid, RedividesActivationRam)
{
    const AcceleratorConfig cfg = scnnWithPeGrid(2, 2);
    // 1.25 MB / 4 PEs / 2 RAMs each.
    EXPECT_EQ(cfg.pe.iaramBytes, 64 * 20 * 1024 / 4 / 2);
    EXPECT_EQ(cfg.activationSramBytes(),
              scnnConfig().activationSramBytes());
}

TEST(PeGrid, FactorsNonSquareCounts)
{
    const AcceleratorConfig cfg = scnnWithPeGrid(4, 8); // 32 muls/PE
    EXPECT_EQ(cfg.pe.mulF * cfg.pe.mulI, 32);
    EXPECT_GE(cfg.pe.mulF, cfg.pe.mulI);
}

TEST(Validate, WellFormedConfigsHaveNoErrors)
{
    EXPECT_TRUE(scnnConfig().validate().empty());
    EXPECT_TRUE(dcnnConfig().validate().empty());
    EXPECT_TRUE(dcnnOptConfig().validate().empty());
    EXPECT_TRUE(scnnWithPeGrid(4, 4).validate().empty());
}

TEST(Validate, ReturnsDescriptiveErrorList)
{
    auto errorsContain = [](const AcceleratorConfig &cfg,
                            const std::string &needle) {
        for (const auto &e : cfg.validate())
            if (e.find(needle) != std::string::npos)
                return true;
        return false;
    };

    AcceleratorConfig cfg = scnnConfig();
    cfg.peRows = 0;
    EXPECT_TRUE(errorsContain(cfg, "empty PE array"));

    cfg = scnnConfig();
    cfg.pe.mulF = 0;
    EXPECT_TRUE(errorsContain(cfg, "multiplier"));

    cfg = dcnnConfig();
    cfg.pe.dotWidth = 0;
    EXPECT_TRUE(errorsContain(cfg, "dot-product"));

    cfg = scnnConfig();
    cfg.dramBitsPerCycle = 0;
    EXPECT_TRUE(errorsContain(cfg, "DRAM"));

    // Every message names the offending configuration.
    cfg = scnnConfig();
    cfg.name = "broken-cfg";
    cfg.ppuLanes = 0;
    EXPECT_TRUE(errorsContain(cfg, "broken-cfg"));
}

TEST(Validate, CollectsAllProblemsNotJustTheFirst)
{
    AcceleratorConfig cfg = scnnConfig();
    cfg.peRows = 0;
    cfg.dramBitsPerCycle = 0;
    cfg.pe.iaramBytes = 0;
    EXPECT_GE(cfg.validate().size(), 3u);
}

TEST(Validate, OrDieExitsOnBrokenConfig)
{
    AcceleratorConfig cfg = scnnConfig();
    cfg.peRows = 0;
    EXPECT_EXIT(cfg.validateOrDie(), ::testing::ExitedWithCode(1),
                "empty PE array");
}

} // anonymous namespace
} // namespace scnn
