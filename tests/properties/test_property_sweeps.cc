/**
 * @file
 * Property-based sweeps: randomized layer geometries and densities
 * checked against the invariants that must hold for ANY layer --
 * functional equivalence with the reference convolution, conservation
 * of non-zero products, oracle bounds, utilization bounds, and
 * monotonicity of the analytical model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "analytic/timeloop.hh"
#include "common/random.hh"
#include "nn/reference.hh"
#include "nn/workload.hh"
#include "scnn/oracle.hh"
#include "scnn/simulator.hh"

namespace scnn {
namespace {

/** Draw a random-but-valid small layer. */
ConvLayerParams
randomLayer(Rng &rng)
{
    ConvLayerParams p;
    p.inChannels = 1 + static_cast<int>(rng.uniformInt(24));
    p.outChannels = 1 + static_cast<int>(rng.uniformInt(24));
    p.inWidth = 3 + static_cast<int>(rng.uniformInt(26));
    p.inHeight = 3 + static_cast<int>(rng.uniformInt(26));
    const int fw = 1 + 2 * static_cast<int>(rng.uniformInt(3)); // 1/3/5
    p.filterW = std::min(fw, p.inWidth);
    const int fh = 1 + 2 * static_cast<int>(rng.uniformInt(3));
    p.filterH = std::min(fh, p.inHeight);
    p.strideX = 1 + static_cast<int>(rng.uniformInt(3));
    p.strideY = 1 + static_cast<int>(rng.uniformInt(3));
    p.padX = static_cast<int>(rng.uniformInt(p.filterW));
    p.padY = static_cast<int>(rng.uniformInt(p.filterH));
    if (rng.bernoulli(0.2) && p.inChannels % 2 == 0 &&
        p.outChannels % 2 == 0) {
        p.groups = 2;
    }
    p.weightDensity = rng.uniform(0.05, 1.0);
    p.inputDensity = rng.uniform(0.05, 1.0);
    p.applyRelu = rng.bernoulli(0.8);
    p.name = strfmt("prop_c%d_k%d_w%d_h%d_f%dx%d_s%d%d_p%d%d_g%d",
                    p.inChannels, p.outChannels, p.inWidth,
                    p.inHeight, p.filterW, p.filterH, p.strideX,
                    p.strideY, p.padX, p.padY, p.groups);
    // Output must be non-empty; shrink stride if needed.
    while ((p.inWidth + 2 * p.padX - p.filterW) / p.strideX + 1 <= 0)
        --p.strideX;
    while ((p.inHeight + 2 * p.padY - p.filterH) / p.strideY + 1 <= 0)
        --p.strideY;
    p.validate();
    return p;
}

class RandomizedLayers : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomizedLayers, InvariantsHold)
{
    Rng rng("property", static_cast<uint64_t>(GetParam()));
    ScnnSimulator sim(scnnConfig());
    const AcceleratorConfig cfg = scnnConfig();

    for (int trial = 0; trial < 6; ++trial) {
        const ConvLayerParams layer = randomLayer(rng);
        const LayerWorkload w = makeWorkload(layer, rng.next());

        const LayerResult r = sim.runLayer(w);

        // 1. Functional equivalence with the reference convolution.
        const Tensor3 expect =
            layer.applyRelu
                ? referenceConv(layer, w.input, w.weights)
                : referenceConvNoRelu(layer, w.input, w.weights);
        ASSERT_LT(maxAbsDiff(r.output, expect), 1e-3) << layer.name;

        // 2. Product conservation: products == sum over channels of
        //    nnz(act) * nnz(wt) (phase decomposition loses nothing).
        uint64_t expected = 0;
        const int cPerGroup = layer.inChannels / layer.groups;
        const int kPerGroup = layer.outChannels / layer.groups;
        for (int c = 0; c < layer.inChannels; ++c) {
            uint64_t an = 0;
            for (int x = 0; x < layer.inWidth; ++x)
                for (int y = 0; y < layer.inHeight; ++y)
                    an += (w.input.get(c, x, y) != 0.0f);
            uint64_t wn = 0;
            const int cg = c / cPerGroup;
            for (int k = cg * kPerGroup; k < (cg + 1) * kPerGroup;
                 ++k)
                for (int fr = 0; fr < layer.filterW; ++fr)
                    for (int fs = 0; fs < layer.filterH; ++fs)
                        wn += (w.weights.get(k, c % cPerGroup, fr,
                                             fs) != 0.0f);
            // Phase matching drops nothing for stride 1; for larger
            // strides only phase-matched pairs multiply.
            if (layer.strideX == 1 && layer.strideY == 1)
                expected += an * wn;
        }
        if (layer.strideX == 1 && layer.strideY == 1)
            ASSERT_EQ(r.products, expected) << layer.name;

        // 3. Oracle lower-bounds cycles; utilization within [0, 1].
        ASSERT_LE(oracleCycles(r, cfg), r.cycles) << layer.name;
        ASSERT_GE(r.multUtilBusy, 0.0);
        ASSERT_LE(r.multUtilBusy, 1.0 + 1e-9) << layer.name;
        ASSERT_GE(r.peIdleFraction, 0.0);
        ASSERT_LE(r.peIdleFraction, 1.0) << layer.name;

        // 4. Landed products cannot exceed products and must equal
        //    the reference's non-zero contribution count bound.
        ASSERT_LE(r.landedProducts, r.products) << layer.name;

        // 5. Energy strictly positive with any work.
        if (r.products > 0)
            ASSERT_GT(r.energyPj, 0.0) << layer.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedLayers,
                         ::testing::Range(0, 8));

/** The analytical model tracks the simulator across random layers. */
TEST(RandomizedAnalytic, TimeLoopWithinBand)
{
    Rng rng("analytic-prop", 7);
    ScnnSimulator sim(scnnConfig());
    TimeLoopModel model;

    int checked = 0;
    for (int trial = 0; trial < 60 && checked < 6; ++trial) {
        ConvLayerParams layer = randomLayer(rng);
        // Restrict to stride-1 mid-size layers where expectation
        // formulas are tight (tiny layers are dominated by
        // quantization noise).
        if (layer.strideX != 1 || layer.strideY != 1)
            continue;
        if (layer.inWidth < 12 || layer.inHeight < 12 ||
            layer.inChannels < 8) {
            continue;
        }
        // TimeLoop assumes i.i.d. sparsity.
        layer.actSpatialSigma = 0.0;
        layer.actChannelSigma = 0.0;
        ++checked;
        const LayerWorkload w = makeWorkload(layer, rng.next());
        const LayerResult simRes = sim.runLayer(w);
        const LayerResult est =
            model.estimateLayer(scnnConfig(), layer);
        const double rel = static_cast<double>(est.cycles) /
                           static_cast<double>(simRes.cycles);
        EXPECT_GT(rel, 0.6) << layer.name;
        EXPECT_LT(rel, 1.6) << layer.name;
    }
    EXPECT_GE(checked, 3);
}

} // anonymous namespace
} // namespace scnn
