/**
 * @file
 * Property sweep pinning the SIMD kernel twins against each other:
 * for every combination of activation density x stride x multiplier-
 * array shape (F, I) -- including shapes whose substreams leave
 * ragged tails smaller than the vector width, a non-power-of-two
 * bank count (which must dispatch to the scalar kernels), grouped
 * convolution and both halo modes -- a full ScnnSimulator::runLayer
 * under SCNN_SIMD=native must produce a LayerResult that is
 * bit-identical (timing stats, energy, extra stats, functional
 * output) to SCNN_SIMD=scalar.
 *
 * On build tiers without the vector kernel scheme the two modes bind
 * the same kernels and the sweep degenerates to a determinism check.
 */

#include <gtest/gtest.h>

#include <string>

#include "arch/config.hh"
#include "common/simd.hh"
#include "nn/model_zoo.hh"
#include "nn/workload.hh"
#include "scnn/simulator.hh"
#include "tensor/tensor.hh"

namespace scnn {
namespace {

void
expectBitIdentical(const LayerResult &a, const LayerResult &b,
                   const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.computeCycles, b.computeCycles) << what;
    EXPECT_EQ(a.drainExposedCycles, b.drainExposedCycles) << what;
    EXPECT_EQ(a.mulArrayOps, b.mulArrayOps) << what;
    EXPECT_EQ(a.products, b.products) << what;
    EXPECT_EQ(a.landedProducts, b.landedProducts) << what;
    EXPECT_EQ(a.stats.get("conflict_stall_cycles"),
              b.stats.get("conflict_stall_cycles"))
        << what;
    EXPECT_EQ(a.energyPj, b.energyPj) << what;
    EXPECT_EQ(a.dramWeightBits, b.dramWeightBits) << what;
    EXPECT_EQ(a.dramActBits, b.dramActBits) << what;
    EXPECT_EQ(a.stats.entries(), b.stats.entries()) << what;
    ASSERT_EQ(a.output.channels(), b.output.channels()) << what;
    if (a.output.channels() > 0)
        EXPECT_EQ(maxAbsDiff(a.output, b.output), 0.0) << what;
}

struct ArrayShape
{
    int f;
    int i;
};

TEST(SimdParity, DensityStrideShapeSweep)
{
    const simd::Mode ambient = simd::mode();

    // F = I = 4 is the paper shape (dedicated kernel); 8x8 and 2x4
    // exercise the generic kernel's full and ragged vector tails;
    // 5x3 yields 30 banks (not a power of two), which must fall back
    // to the scalar kernels under both modes.
    const ArrayShape shapes[] = {{4, 4}, {8, 8}, {2, 4}, {5, 3}};
    const double densities[] = {0.05, 0.35, 0.9};
    const int strides[] = {1, 2, 3};

    int caseNo = 0;
    for (const ArrayShape shape : shapes) {
        for (const double density : densities) {
            for (const int stride : strides) {
                for (const bool inputHalos : {false, true}) {
                    ConvLayerParams layer;
                    layer.name = "sweep_f" + std::to_string(shape.f) +
                                 "i" + std::to_string(shape.i) + "_d" +
                                 std::to_string(density) + "_s" +
                                 std::to_string(stride) +
                                 (inputHalos ? "_ih" : "_oh");
                    // Odd extents and channel counts leave ragged
                    // activation vectors and weight chunks at every
                    // F/I shape.
                    layer.inChannels = 6;
                    layer.outChannels = 14;
                    layer.inWidth = 17;
                    layer.inHeight = 13;
                    layer.filterW = 3;
                    layer.filterH = 3;
                    layer.strideX = stride;
                    layer.strideY = stride;
                    layer.padX = 1;
                    layer.padY = 1;
                    layer.groups = 2;
                    layer.weightDensity = 0.5;
                    layer.inputDensity = density;
                    layer.validate();

                    AcceleratorConfig cfg = scnnConfig();
                    cfg.pe.mulF = shape.f;
                    cfg.pe.mulI = shape.i;
                    cfg.pe.accumBanks = 2 * shape.f * shape.i;
                    cfg.pe.inputHalos = inputHalos;
                    ScnnSimulator sim(cfg);

                    const LayerWorkload w =
                        makeWorkload(layer, 977 + caseNo);
                    ++caseNo;

                    RunOptions opts;
                    opts.threads = 1;
                    simd::setMode(simd::Mode::Scalar);
                    const LayerResult scalar = sim.runLayer(w, opts);
                    simd::setMode(simd::Mode::Native);
                    const LayerResult native = sim.runLayer(w, opts);
                    simd::setMode(ambient);

                    expectBitIdentical(scalar, native, layer.name);
                }
            }
        }
    }
}

/**
 * Stats-only runs (RunOptions::functional = false) must agree across
 * modes too: the vector routing path is shared, but the stats-only
 * kernels skip all functional lanes.
 */
TEST(SimdParity, StatsOnlyRunsAgreeAcrossModes)
{
    const simd::Mode ambient = simd::mode();
    ConvLayerParams layer =
        makeConv("sweep_stats", 7, 13, 19, 3, 1, 0.45, 0.3);
    AcceleratorConfig cfg = scnnConfig();
    ScnnSimulator sim(cfg);
    const LayerWorkload w = makeWorkload(layer, 4242);

    RunOptions opts;
    opts.threads = 1;
    opts.functional = false;
    simd::setMode(simd::Mode::Scalar);
    const LayerResult scalar = sim.runLayer(w, opts);
    simd::setMode(simd::Mode::Native);
    const LayerResult native = sim.runLayer(w, opts);
    simd::setMode(ambient);

    expectBitIdentical(scalar, native, "stats-only");
    EXPECT_EQ(native.output.channels(), 0)
        << "stats-only runs produce no functional output";
}

} // anonymous namespace
} // namespace scnn
